//! Wire types exchanged between the four parties.

use slicer_bignum::BigUint;
use slicer_chain::{TokenOnChain, VerifyEntry};
use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};
use slicer_store::IndexLabel;
use slicer_trapdoor::Trapdoor;

/// Wall-clock split of a build/insert run: the paper reports index
/// building and ADS building separately (Fig. 3 / Fig. 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildTiming {
    /// Time spent producing encrypted index entries (tuples, trapdoors,
    /// PRF labels, record encryption).
    pub index: std::time::Duration,
    /// Time spent on the ADS (multiset hashes, `H_prime`, accumulation).
    pub ads: std::time::Duration,
}

slicer_crypto::impl_codec!(BuildTiming { index, ads });

/// Output of `Build` / `Insert` shipped from the owner to the cloud:
/// the (new) index entries, (new) prime representatives and the updated
/// accumulation value.
#[derive(Debug, Clone)]
pub struct BuildOutput {
    /// Encrypted index entries `(l, d)`.
    pub entries: Vec<(IndexLabel, Vec<u8>)>,
    /// Prime representatives added to `X`.
    pub primes: Vec<BigUint>,
    /// The accumulation value `Ac` over the *entire* prime list.
    pub accumulator: BigUint,
    /// Phase timing of this run (not part of the protocol; benchmarking
    /// metadata).
    pub timing: BuildTiming,
}

impl Encode for BuildOutput {
    fn encode(&self, out: &mut Vec<u8>) {
        // Timing is benchmarking metadata, not protocol state: excluding it
        // keeps same-seed builds byte-identical on the wire.
        self.entries.encode(out);
        self.primes.encode(out);
        self.accumulator.encode(out);
    }
}

impl Decode for BuildOutput {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BuildOutput {
            entries: Decode::decode(reader)?,
            primes: Decode::decode(reader)?,
            accumulator: Decode::decode(reader)?,
            timing: BuildTiming::default(),
        })
    }
}

/// A search token `(t_j, j, G1, G2)` for one keyword (Algorithm 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchToken {
    /// Newest trapdoor for the keyword.
    pub trapdoor: Trapdoor,
    /// Update count `j`.
    pub updates: u32,
    /// `G1 = G(K, w‖1)`.
    pub g1: [u8; 32],
    /// `G2 = G(K, w‖2)`.
    pub g2: [u8; 32],
}

slicer_crypto::impl_codec!(SearchToken {
    trapdoor,
    updates,
    g1,
    g2,
});

impl SearchToken {
    /// Converts to the on-chain representation, serializing the trapdoor at
    /// the given fixed width.
    pub fn to_chain(&self, trapdoor_width: usize) -> TokenOnChain {
        TokenOnChain {
            trapdoor: self.trapdoor.to_bytes(trapdoor_width),
            j: self.updates,
            g1: self.g1,
            g2: self.g2,
        }
    }
}

/// The cloud's answer for one search token: the recovered encrypted
/// results (Algorithm 4's `er`).
#[derive(Debug, Clone)]
pub struct SliceResult {
    /// The token answered.
    pub token: SearchToken,
    /// Encrypted matched records `Enc(K_R, R)`, one per hit.
    pub er: Vec<Vec<u8>>,
}

slicer_crypto::impl_codec!(SliceResult { token, er });

/// The cloud's full response to a search request: chain-ready entries
/// (results + verification objects) plus the raw results for the user.
#[derive(Debug, Clone)]
pub struct CloudResponse {
    /// Entries submitted to the contract.
    pub entries: Vec<VerifyEntry>,
    /// The per-token results (same order as `entries`).
    pub results: Vec<SliceResult>,
}

/// The comparison operator of a user query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOp {
    /// Records whose value equals the query value.
    Equal,
    /// Records whose value is strictly less than the query value.
    LessThan,
    /// Records whose value is strictly greater than the query value.
    GreaterThan,
}

impl Encode for QueryOp {
    fn encode(&self, out: &mut Vec<u8>) {
        let variant: u32 = match self {
            QueryOp::Equal => 0,
            QueryOp::LessThan => 1,
            QueryOp::GreaterThan => 2,
        };
        variant.encode(out);
    }
}

impl Decode for QueryOp {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(reader)? {
            0 => Ok(QueryOp::Equal),
            1 => Ok(QueryOp::LessThan),
            2 => Ok(QueryOp::GreaterThan),
            v => Err(CodecError::msg(format!("invalid QueryOp variant {v}"))),
        }
    }
}

/// A user query `(attribute, value, matching condition)`.
///
/// # Examples
///
/// ```
/// use slicer_core::Query;
/// let q = Query::less_than(30).on_attr("age");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Attribute name (empty for single-attribute databases).
    pub attr: Vec<u8>,
    /// The query value `v`.
    pub value: u64,
    /// The matching condition `mc`.
    pub op: QueryOp,
}

slicer_crypto::impl_codec!(Query { attr, value, op });

impl Query {
    /// Equality query on the anonymous attribute.
    pub fn equal(value: u64) -> Self {
        Query {
            attr: Vec::new(),
            value,
            op: QueryOp::Equal,
        }
    }

    /// `< value` query on the anonymous attribute.
    pub fn less_than(value: u64) -> Self {
        Query {
            attr: Vec::new(),
            value,
            op: QueryOp::LessThan,
        }
    }

    /// `> value` query on the anonymous attribute.
    pub fn greater_than(value: u64) -> Self {
        Query {
            attr: Vec::new(),
            value,
            op: QueryOp::GreaterThan,
        }
    }

    /// Rebinds the query to a named attribute.
    #[must_use]
    pub fn on_attr(mut self, attr: &str) -> Self {
        self.attr = attr.as_bytes().to_vec();
        self
    }

    /// Whether a plaintext value satisfies this query (test oracle).
    pub fn matches(&self, v: u64) -> bool {
        match self.op {
            QueryOp::Equal => v == self.value,
            QueryOp::LessThan => v < self.value,
            QueryOp::GreaterThan => v > self.value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_oracle() {
        assert!(Query::equal(5).matches(5));
        assert!(!Query::equal(5).matches(6));
        assert!(Query::less_than(5).matches(4));
        assert!(!Query::less_than(5).matches(5));
        assert!(Query::greater_than(5).matches(6));
    }

    #[test]
    fn attr_binding() {
        let q = Query::equal(1).on_attr("age");
        assert_eq!(q.attr, b"age");
    }

    #[test]
    fn token_chain_conversion_pads_trapdoor() {
        let t = SearchToken {
            trapdoor: Trapdoor::from_value(BigUint::from(5u64)),
            updates: 2,
            g1: [1; 32],
            g2: [2; 32],
        };
        let oc = t.to_chain(64);
        assert_eq!(oc.trapdoor.len(), 64);
        assert_eq!(oc.j, 2);
    }
}
