//! Per-phase latency and gas profiles of a protocol run.
//!
//! The paper's evaluation splits cost by protocol phase (token generation,
//! search, on-chain verification, settlement — Figs. 6–9 and Table II).
//! [`SearchProfile`] carries that breakdown on every
//! [`SearchOutcome`](crate::SearchOutcome): wall-time per phase measured by
//! the orchestrator, and gas attributed from the receipts'
//! [`GasBreakdown`]s so the phase gas totals reconcile *exactly* with
//! `request_gas + verify_gas`.

use slicer_chain::GasBreakdown;
use std::time::Duration;

/// Wall-time and gas of one protocol phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Wall-clock time spent in the phase.
    pub wall: Duration,
    /// Gas consumed on chain during the phase (0 for off-chain phases).
    pub gas: u64,
}

impl PhaseStat {
    /// Accumulates another stat (for merging dual-instance runs).
    pub fn merge(&mut self, other: &PhaseStat) {
        self.wall += other.wall;
        self.gas += other.gas;
    }
}

/// Phase-by-phase profile of one verified search.
///
/// Gas attribution follows the transaction structure: the Token phase owns
/// the `RequestSearch` transaction, the Verify phase owns the
/// `SubmitResult` transaction minus its settlement transfer, and the
/// Settle phase owns that transfer. Search is off-chain and carries gas 0.
/// Hence `total_gas() == request_gas + verify_gas` always.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchProfile {
    /// Token generation + on-chain request registration (Algorithm 3).
    pub token: PhaseStat,
    /// The cloud's index walk and witness generation (Algorithm 4),
    /// entirely off-chain.
    pub search: PhaseStat,
    /// On-chain result verification (Algorithm 5, minus settlement).
    pub verify: PhaseStat,
    /// Fee settlement (escrow transfer) + block sealing + user decryption.
    pub settle: PhaseStat,
    /// Combined per-category gas of the run's transactions.
    pub gas: GasBreakdown,
}

impl SearchProfile {
    /// Total gas across all phases; equals
    /// `SearchOutcome::request_gas + verify_gas`.
    pub fn total_gas(&self) -> u64 {
        self.token.gas + self.search.gas + self.verify.gas + self.settle.gas
    }

    /// Total wall time across all phases.
    pub fn total_wall(&self) -> Duration {
        self.token.wall + self.search.wall + self.verify.wall + self.settle.wall
    }

    /// The four search-time phases as `(name, stat)` pairs, in protocol
    /// order. (Setup and Build are per-deployment phases reported through
    /// the telemetry registry, not per-search.)
    pub fn phases(&self) -> [(&'static str, PhaseStat); 4] {
        [
            ("token", self.token),
            ("search", self.search),
            ("verify", self.verify),
            ("settle", self.settle),
        ]
    }

    /// Accumulates another profile (dual-instance searches run two
    /// verified searches and report their sum).
    pub fn merge(&mut self, other: &SearchProfile) {
        self.token.merge(&other.token);
        self.search.merge(&other.search);
        self.verify.merge(&other.verify);
        self.settle.merge(&other.settle);
        self.gas.merge(&other.gas);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_phases() {
        let mut p = SearchProfile::default();
        p.token = PhaseStat {
            wall: Duration::from_millis(2),
            gas: 30_000,
        };
        p.verify = PhaseStat {
            wall: Duration::from_millis(5),
            gas: 85_000,
        };
        p.settle.gas = 9_000;
        assert_eq!(p.total_gas(), 124_000);
        assert_eq!(p.total_wall(), Duration::from_millis(7));
        assert_eq!(p.phases()[0].0, "token");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SearchProfile::default();
        a.token.gas = 10;
        a.search.wall = Duration::from_micros(3);
        let mut b = SearchProfile::default();
        b.token.gas = 5;
        b.search.wall = Duration::from_micros(4);
        a.merge(&b);
        assert_eq!(a.token.gas, 15);
        assert_eq!(a.search.wall, Duration::from_micros(7));
    }
}
