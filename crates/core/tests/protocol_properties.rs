//! Property-based protocol invariants: random databases, random queries,
//! always equal to the plaintext oracle; VOs always verify; tampering is
//! always detected (offline variant — no chain — for property-test
//! throughput).

use slicer_accumulator::Accumulator;
use slicer_core::{CloudServer, DataOwner, Query, RecordId, SlicerConfig};
use slicer_testkit::{prop_assert, prop_assert_eq, prop_check, Gen};

fn build_system(values: &[u64], seed: u64) -> (DataOwner, CloudServer) {
    let db: Vec<(RecordId, u64)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (RecordId::from_u64(i as u64), v))
        .collect();
    let mut owner = DataOwner::new(SlicerConfig::test_8bit(), seed);
    let out = owner.build(&db).expect("8-bit values");
    let mut cloud = CloudServer::new(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
    );
    cloud.ingest(&out).expect("fresh cloud");
    (owner, cloud)
}

fn decrypted_ids(owner: &DataOwner, results: &[slicer_core::SliceResult]) -> Vec<u64> {
    let user = owner.delegate();
    let mut ids: Vec<u64> = user
        .decrypt(results)
        .expect("honest results decrypt")
        .iter()
        .map(|r| r.as_u64().expect("u64 ids"))
        .collect();
    ids.sort_unstable();
    ids
}

fn values_vec(g: &mut Gen, min: usize, max: usize) -> Vec<u64> {
    (0..g.usize_in(min, max))
        .map(|_| g.u64_in(0, 255))
        .collect()
}

#[test]
fn search_matches_oracle() {
    prop_check!(0xC0E1, 64, |g| {
        let values = values_vec(g, 1, 39);
        let qv = g.u64_in(0, 255);
        let seed = g.u64_in(0, 999);
        let (owner, cloud) = build_system(&values, seed);
        for q in [
            Query::equal(qv),
            Query::less_than(qv),
            Query::greater_than(qv),
        ] {
            let tokens = owner.search_tokens(&q);
            let results = cloud.search(&tokens);
            let got = decrypted_ids(&owner, &results);
            let mut want: Vec<u64> = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| q.matches(v))
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "query {:?}", q);
        }
        Ok(())
    });
}

#[test]
fn honest_vos_always_verify() {
    prop_check!(0xC0E2, 64, |g| {
        let values = values_vec(g, 1, 24);
        let qv = g.u64_in(0, 255);
        let seed = g.u64_in(0, 999);
        let (owner, mut cloud) = build_system(&values, seed);
        let tokens = owner.search_tokens(&Query::less_than(qv));
        let resp = cloud.respond(&tokens).unwrap();
        let params = &owner.config().accumulator;
        let acc = Accumulator::from_value(params, owner.accumulator().clone());
        for (entry, result) in resp.entries.iter().zip(&resp.results) {
            let x = cloud.prime_for(result).unwrap();
            let w = slicer_bignum::BigUint::from_bytes_be(&entry.vo);
            prop_assert!(acc.verify(&x, &w));
        }
        Ok(())
    });
}

#[test]
fn any_single_record_drop_is_detected() {
    prop_check!(0xC0E3, 64, |g| {
        let values = values_vec(g, 2, 24);
        let seed = g.u64_in(0, 999);
        let (owner, mut cloud) = build_system(&values, seed);
        // Query that matches everything so some slice is non-empty.
        let tokens = owner.search_tokens(&Query::less_than(255));
        let resp = cloud.respond(&tokens).unwrap();
        let params = &owner.config().accumulator;
        let acc = Accumulator::from_value(params, owner.accumulator().clone());
        // Drop one record from each non-empty slice in turn; the slice's
        // recomputed prime must no longer verify against its witness.
        for (i, result) in resp.results.iter().enumerate() {
            if result.er.is_empty() {
                continue;
            }
            let mut tampered = result.clone();
            tampered.er.pop();
            let x = cloud.prime_for(&tampered).unwrap();
            let w = slicer_bignum::BigUint::from_bytes_be(&resp.entries[i].vo);
            prop_assert!(!acc.verify(&x, &w), "slice {i} tamper undetected");
        }
        Ok(())
    });
}

#[test]
fn insert_preserves_oracle_equality() {
    prop_check!(0xC0E4, 64, |g| {
        let initial = values_vec(g, 1, 19);
        let extra = values_vec(g, 1, 9);
        let qv = g.u64_in(0, 255);
        let seed = g.u64_in(0, 999);
        let (mut owner, mut cloud) = build_system(&initial, seed);
        let delta: Vec<(RecordId, u64)> = extra
            .iter()
            .enumerate()
            .map(|(i, &v)| (RecordId::from_u64(1_000 + i as u64), v))
            .collect();
        let out = owner.insert(&delta).expect("in-domain");
        cloud.ingest(&out).expect("consistent");
        let q = Query::less_than(qv);
        let tokens = owner.search_tokens(&q);
        let results = cloud.search(&tokens);
        let got = decrypted_ids(&owner, &results);
        let mut want: Vec<u64> = initial
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .chain(
                extra
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (1_000 + i as u64, v)),
            )
            .filter(|(_, v)| q.matches(*v))
            .map(|(id, _)| id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        Ok(())
    });
}
