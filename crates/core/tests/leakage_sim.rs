//! Simulation-flavoured leakage tests (Theorem 2's claim, observably):
//! transcripts of same-*shape* databases are indistinguishable in every
//! quantity the leakage functions expose, regardless of content.

use slicer_core::leakage::{BuildLeakage, RepeatLeakage, SearchLeakage};
use slicer_core::{CloudServer, DataOwner, Query, RecordId, SlicerConfig};

fn build(values: &[u64], seed: u64) -> (DataOwner, CloudServer, BuildLeakage) {
    let db: Vec<(RecordId, u64)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (RecordId::from_u64(i as u64), v))
        .collect();
    let mut owner = DataOwner::new(SlicerConfig::test_8bit(), seed);
    let out = owner.build(&db).unwrap();
    let leak = BuildLeakage::of(&out).expect("build shipments are uniform");
    let mut cloud = CloudServer::new(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
    );
    cloud.ingest(&out).unwrap();
    (owner, cloud, leak)
}

#[test]
fn same_shape_databases_have_identical_build_leakage() {
    // Databases with the same value-multiplicity *shape* but disjoint
    // contents: 10 distinct values × 3 copies each.
    let a: Vec<u64> = (0..10u64).flat_map(|v| [v; 3]).collect();
    let b: Vec<u64> = (0..10u64).flat_map(|v| [v + 100; 3]).collect();
    let (_, _, leak_a) = build(&a, 1);
    let (_, _, leak_b) = build(&b, 2);
    assert_eq!(leak_a.entries, leak_b.entries);
    assert_eq!(leak_a.label_bits, leak_b.label_bits);
    assert_eq!(leak_a.value_bits, leak_b.value_bits);
    assert_eq!(leak_a.prime_bits, leak_b.prime_bits);
    // Prime counts depend only on distinct-keyword counts, which depend
    // only on the set of values' slice structure — same here by shift.
    // (Shifting by 100 changes prefixes, so prime counts may differ by a
    // few; the *size* fields above are the L^build payload.)
}

#[test]
fn search_leakage_is_access_pattern_only() {
    let values: Vec<u64> = (0..30).map(|i| (i * 7) % 256).collect();
    let (owner, cloud, _) = build(&values, 3);
    let q = Query::less_than(100);
    let tokens = owner.search_tokens(&q);
    let results = cloud.search(&tokens);
    let leak = SearchLeakage::of(&results);
    // The profile records (j, hits) per token — nothing value-shaped.
    assert_eq!(leak.tokens.len(), tokens.len());
    let total: usize = leak.tokens.iter().map(|(_, n)| n).sum();
    let expected = values.iter().filter(|&&v| v < 100).count();
    assert_eq!(total, expected);
    assert!(leak.tokens.iter().all(|&(j, _)| j == 0), "no inserts yet");
}

#[test]
fn equality_queries_on_same_count_values_leak_identically() {
    // Two values with the same occurrence count: their search transcripts
    // have identical leakage profiles (the server cannot tell which value
    // was searched).
    let values: Vec<u64> = vec![5, 5, 5, 9, 9, 9, 1];
    let (owner, cloud, _) = build(&values, 4);
    let l5 = SearchLeakage::of(&cloud.search(&owner.search_tokens(&Query::equal(5))));
    let l9 = SearchLeakage::of(&cloud.search(&owner.search_tokens(&Query::equal(9))));
    assert_eq!(l5, l9, "same-count values are indistinguishable");
    let l1 = SearchLeakage::of(&cloud.search(&owner.search_tokens(&Query::equal(1))));
    assert_ne!(l5, l1, "different counts differ (that IS the leakage)");
}

#[test]
fn repeat_leakage_tracks_only_identity() {
    let values: Vec<u64> = (0..20).collect();
    let (owner, _, _) = build(&values, 5);
    let mut history = Vec::new();
    history.extend(owner.search_tokens(&Query::equal(3)));
    history.extend(owner.search_tokens(&Query::equal(4)));
    history.extend(owner.search_tokens(&Query::equal(3)));
    history.extend(owner.search_tokens(&Query::equal(3)));
    let m = RepeatLeakage::of(&history);
    assert_eq!(m.distinct(), 2);
    // Identity classes: {0, 2, 3} and {1}.
    assert!(m.matrix[0][2] && m.matrix[2][3] && m.matrix[0][3]);
    assert!(!m.matrix[0][1] && !m.matrix[1][2]);
}

#[test]
fn insert_then_search_changes_access_pattern_not_shape() {
    let values: Vec<u64> = vec![42; 5];
    let (mut owner, mut cloud, _) = build(&values, 6);
    let before = SearchLeakage::of(&cloud.search(&owner.search_tokens(&Query::equal(42))));
    assert_eq!(before.tokens[0], (0, 5));
    let out = owner.insert(&[(RecordId::from_u64(100), 42)]).unwrap();
    cloud.ingest(&out).unwrap();
    let after = SearchLeakage::of(&cloud.search(&owner.search_tokens(&Query::equal(42))));
    // Generation count ticked, hit count grew — exactly the L^search story.
    assert_eq!(after.tokens[0], (1, 6));
}
