use slicer_lint::parser::parse_file;
use slicer_lint::taint;
use std::fs;

fn main() {
    let root = std::path::Path::new(".");
    let mut sources = Vec::new();
    for path in slicer_lint::collect_files(root).unwrap() {
        let rel = slicer_lint::relative_path(root, &path);
        let src = fs::read_to_string(&path).unwrap();
        sources.push((rel, src));
    }
    let parsed: Vec<_> = sources.iter().map(|(p, s)| parse_file(p, s)).collect();
    taint::debug_dump(&parsed);
}
