//! End-to-end taint coverage over the seeded-violation fixture files in
//! `fixtures/taint/`. Each leak fixture must produce exactly its expected
//! `taint.*` findings through the public [`slicer_lint::scan_sources`]
//! entry point (the same engine `--check` runs); the sanitized variants
//! must produce none.
//!
//! Fixtures are mounted at synthetic in-crate paths because source
//! seeding is gated to the protocol crates.

use slicer_lint::Finding;

fn scan_at(files: &[(&str, &str)]) -> Vec<Finding> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    slicer_lint::scan_sources(&sources)
}

fn taint_rules(findings: &[Finding]) -> Vec<&'static str> {
    findings
        .iter()
        .filter(|f| f.rule.starts_with("taint."))
        .map(|f| f.rule)
        .collect()
}

#[test]
fn annotated_secret_to_log() {
    let found = scan_at(&[(
        "crates/core/src/leak_log.rs",
        include_str!("../fixtures/taint/leak_log.rs"),
    )]);
    assert_eq!(taint_rules(&found), vec!["taint.secret_to_log"]);
    let hit = &found[0];
    assert_eq!(hit.line, 9, "finding anchors to the span.attr call");
    assert!(hit.detail.contains("telemetry"), "{}", hit.detail);
}

#[test]
fn secret_typed_param_to_debug() {
    let found = scan_at(&[(
        "crates/crypto/src/leak_debug.rs",
        include_str!("../fixtures/taint/leak_debug.rs"),
    )]);
    assert_eq!(taint_rules(&found), vec!["taint.secret_to_debug"]);
}

#[test]
fn secret_to_persist_frames() {
    let found = scan_at(&[(
        "crates/persist/src/leak_persist.rs",
        include_str!("../fixtures/taint/leak_persist.rs"),
    )]);
    assert_eq!(taint_rules(&found), vec!["taint.secret_to_persist"]);
}

#[test]
fn secret_to_wire_encoder() {
    let found = scan_at(&[(
        "crates/daemon/src/leak_wire.rs",
        include_str!("../fixtures/taint/leak_wire.rs"),
    )]);
    assert_eq!(taint_rules(&found), vec!["taint.secret_to_wire"]);
}

#[test]
fn secret_getter_to_variable_time_eq() {
    let found = scan_at(&[(
        "crates/core/src/leak_ct.rs",
        include_str!("../fixtures/taint/leak_ct.rs"),
    )]);
    assert_eq!(taint_rules(&found), vec!["taint.secret_to_ct"]);
}

#[test]
fn interprocedural_chain_attributed_at_entry_call() {
    let found = scan_at(&[(
        "crates/core/src/leak_chain.rs",
        include_str!("../fixtures/taint/leak_chain.rs"),
    )]);
    let taints: Vec<&Finding> = found
        .iter()
        .filter(|f| f.rule.starts_with("taint."))
        .collect();
    // `middle`/`bottom` see only parameter taint (no secret source of
    // their own), so the single finding is at `top`'s call site,
    // carrying the whole chain.
    assert_eq!(taints.len(), 1, "{taints:?}");
    let hit = taints[0];
    assert_eq!(hit.rule, "taint.secret_to_log");
    assert_eq!(hit.line, 9, "attributed at top's call into middle");
    assert!(
        hit.detail.contains("middle") && hit.detail.contains("bottom"),
        "chain names every hop: {}",
        hit.detail
    );
}

#[test]
fn sanitized_variants_are_clean() {
    let found = scan_at(&[(
        "crates/core/src/sanitized.rs",
        include_str!("../fixtures/taint/sanitized.rs"),
    )]);
    assert_eq!(taint_rules(&found), Vec::<&str>::new(), "{found:?}");
}

#[test]
fn leak_fixtures_together_report_all_five_rules() {
    let found = scan_at(&[
        (
            "crates/core/src/leak_log.rs",
            include_str!("../fixtures/taint/leak_log.rs"),
        ),
        (
            "crates/crypto/src/leak_debug.rs",
            include_str!("../fixtures/taint/leak_debug.rs"),
        ),
        (
            "crates/persist/src/leak_persist.rs",
            include_str!("../fixtures/taint/leak_persist.rs"),
        ),
        (
            "crates/daemon/src/leak_wire.rs",
            include_str!("../fixtures/taint/leak_wire.rs"),
        ),
        (
            "crates/core/src/leak_ct.rs",
            include_str!("../fixtures/taint/leak_ct.rs"),
        ),
    ]);
    let mut rules = taint_rules(&found);
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec![
            "taint.secret_to_ct",
            "taint.secret_to_debug",
            "taint.secret_to_log",
            "taint.secret_to_persist",
            "taint.secret_to_wire",
        ]
    );
}

#[test]
fn outside_protocol_crates_fixtures_are_ignored() {
    // The same leak mounted in the bench harness is out of scope: bench
    // code constructs key sets on purpose.
    let found = scan_at(&[(
        "crates/bench/src/leak_log.rs",
        include_str!("../fixtures/taint/leak_log.rs"),
    )]);
    assert_eq!(taint_rules(&found), Vec::<&str>::new());
}
