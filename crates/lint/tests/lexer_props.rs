//! Adversarial property tests for the lint lexer: randomly assembled
//! sources mixing the constructs most likely to desynchronize a
//! hand-rolled tokenizer — raw strings with arbitrary hash fences, nested
//! block comments, lifetimes adjacent to char literals, byte strings and
//! escape sequences.
//!
//! The property is marker-based: every piece either *hides* a sentinel
//! identifier inside a literal/comment (it must never reach the token
//! stream) or *shows* one in real code (it must surface exactly once, as
//! an `Ident`, on the predicted line). A lexer that mislays a single
//! string fence or comment delimiter fails within a few cases because
//! every subsequent marker lands on the wrong side.

use slicer_lint::lexer::{lex, TokKind};
use slicer_testkit::{prop_assert, prop_assert_eq, prop_check};

/// One generated source fragment: its text, and whether the embedded
/// marker identifier is visible to the token stream.
struct Piece {
    text: String,
    visible: bool,
}

fn piece(g: &mut slicer_testkit::prop::Gen, id: usize) -> Piece {
    let m = format!("mk{id}");
    match g.u64_in(0, 9) {
        // Plain code: the marker must surface.
        0 => Piece {
            text: format!("let {m} = 1;"),
            visible: true,
        },
        // Line comment hides the marker (and panic-looking bait).
        1 => Piece {
            text: format!("// {m}.unwrap() panic!\n"),
            visible: false,
        },
        // Nested block comment, depth 2–3, optionally multiline.
        2 => {
            let nl = if g.bool() { "\n" } else { " " };
            let depth3 = g.bool();
            let inner = if depth3 {
                format!("/* {m} /* deeper */ */")
            } else {
                format!("/* {m} */")
            };
            Piece {
                text: format!("/* a{nl}{inner}{nl}b */"),
                visible: false,
            }
        }
        // Raw string with 0–3 hash fences; contents include quotes that
        // would terminate a naive scan.
        3 => {
            let hashes = "#".repeat(g.usize_in(0, 3));
            // A bare `"` inside is only safe with at least one fence.
            let bait = if hashes.is_empty() { "" } else { "\" " };
            Piece {
                text: format!("let s = r{hashes}\"{bait}{m}\"{hashes};"),
                visible: false,
            }
        }
        // Byte string / raw byte string.
        4 => {
            let raw = g.bool();
            let text = if raw {
                format!("let s = br#\"{m} \" inner\"#;")
            } else {
                format!("let s = b\"{m}\";")
            };
            Piece {
                text,
                visible: false,
            }
        }
        // Normal string with escaped quote and backslash.
        5 => Piece {
            text: format!("let s = \"\\\"{m}\\\\\";"),
            visible: false,
        },
        // Lifetime position: the marker is a *visible* type-ish ident next
        // to a lifetime that must not be taken for an unterminated char.
        6 => Piece {
            text: format!("fn f{id}<'a>(x: &'a {m}) {{}}"),
            visible: true,
        },
        // Char literals, escaped and punctuation-bodied.
        7 => {
            let lit = match g.u64_in(0, 2) {
                0 => "'x'",
                1 => "'\\n'",
                _ => "'('",
            };
            Piece {
                text: format!("let {m} = {lit};"),
                visible: true,
            }
        }
        // Multiline raw string: newlines inside must advance line counts.
        8 => Piece {
            text: format!("let s = r#\"line\nwith {m}\n\"#;"),
            visible: false,
        },
        // Raw identifier: visible, lexes as an ident containing the name.
        _ => Piece {
            text: format!("let r#{m} = 0;"),
            visible: true,
        },
    }
}

#[test]
fn hidden_markers_never_tokenize_and_visible_ones_always_do() {
    prop_check!(0x1E8E5, 192, |g| {
        let n = g.usize_in(1, 12);
        let pieces: Vec<Piece> = (0..n).map(|i| piece(g, i)).collect();
        let mut src = String::new();
        let mut expected_line = Vec::new(); // (marker, 1-based line)
        for (i, p) in pieces.iter().enumerate() {
            if p.visible {
                // Markers appear on the first line of their piece.
                let line = 1 + src.chars().filter(|&c| c == '\n').count() as u32;
                expected_line.push((format!("mk{i}"), line));
            }
            src.push_str(&p.text);
            if g.bool() {
                src.push('\n');
            } else {
                src.push(' ');
            }
        }

        let lexed = lex(&src);
        for (i, p) in pieces.iter().enumerate() {
            // Exact match (or raw-ident form): `mk1` must not match `mk10`.
            let m = format!("mk{i}");
            let raw = format!("r#{m}");
            let hits: Vec<_> = lexed
                .tokens
                .iter()
                .filter(|t| t.text == m || t.text == raw)
                .collect();
            if p.visible {
                prop_assert_eq!(hits.len(), 1);
                prop_assert!(
                    hits[0].kind == TokKind::Ident,
                    "marker {m} lexed as {:?} in {src:?}",
                    hits[0].kind
                );
            } else {
                prop_assert!(
                    hits.is_empty(),
                    "hidden marker {m} leaked as {:?} in {src:?}",
                    hits[0]
                );
            }
        }
        for (m, line) in &expected_line {
            let raw = format!("r#{m}");
            let tok = lexed.tokens.iter().find(|t| t.text == *m || t.text == raw);
            prop_assert!(tok.is_some(), "missing {m}");
            prop_assert_eq!(tok.map(|t| t.line), Some(*line));
        }
        Ok(())
    });
}

#[test]
fn lifetimes_and_char_literals_never_confuse_each_other() {
    prop_check!(0x11FE, 128, |g| {
        // Random alternation of lifetimes and char literals in one source.
        let n = g.usize_in(1, 10);
        let mut src = String::new();
        let mut want_lifetimes = 0usize;
        let mut want_chars = 0usize;
        for i in 0..n {
            if g.bool() {
                src.push_str(&format!("fn g{i}<'l{i}>(x: &'l{i} u8) {{}}\n"));
                want_lifetimes += 2;
            } else {
                let body = match g.u64_in(0, 3) {
                    0 => "'c'".to_string(),
                    1 => "'\\''".to_string(),
                    2 => "b'q'".to_string(),
                    _ => "')'".to_string(),
                };
                src.push_str(&format!("let c{i} = {body};\n"));
                want_chars += 1;
            }
        }
        let lexed = lex(&src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        prop_assert_eq!(lifetimes, want_lifetimes);
        prop_assert_eq!(chars, want_chars);
        Ok(())
    });
}

#[test]
fn line_numbers_survive_multiline_literals_and_comments() {
    prop_check!(0x11E5, 128, |g| {
        // Interleave multiline constructs with single-line code and check
        // the final token's line equals the source's line count.
        let n = g.usize_in(1, 8);
        let mut src = String::new();
        for _ in 0..n {
            match g.u64_in(0, 3) {
                0 => src.push_str("/* one\ntwo\nthree */\n"),
                1 => src.push_str("let s = \"a\nb\";\n"),
                2 => src.push_str("let r = r#\"x\ny\"#;\n"),
                _ => src.push_str("let q = 1;\n"),
            }
        }
        src.push_str("sentinel");
        let total_lines = 1 + src.chars().filter(|&c| c == '\n').count() as u32;
        let lexed = lex(&src);
        let last = lexed.tokens.last().expect("sentinel token");
        prop_assert_eq!(last.text.as_str(), "sentinel");
        prop_assert_eq!(last.line, total_lines);
        Ok(())
    });
}
