//! Fixture tests: every rule must flag a known-bad snippet at the right
//! line, and known-good idioms (ct_eq helpers, pragma'd sites, test code)
//! must pass clean. Plus the baseline-ratchet contract: grown counts fail,
//! shrunk counts pass.

use slicer_lint::baseline;
use slicer_lint::rules::group_counts;
use slicer_lint::{scan_source, Finding};

/// Scans a snippet as if it lived in the given crate.
fn scan_in(krate: &str, src: &str) -> Vec<Finding> {
    scan_source(&format!("crates/{krate}/src/fixture.rs"), src)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn find<'a>(findings: &'a [Finding], rule: &str) -> &'a Finding {
    findings
        .iter()
        .find(|f| f.rule == rule)
        .unwrap_or_else(|| panic!("expected a {rule} finding, got {findings:?}"))
}

// ---------------------------------------------------------------- panic --

#[test]
fn unwrap_flagged_in_panic_free_crate_at_right_line() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
    let findings = scan_in("chain", src);
    let f = find(&findings, "panic.unwrap");
    assert_eq!(f.line, 2);
}

#[test]
fn expect_and_panic_macros_flagged() {
    let src = r#"
fn f(x: Option<u8>) -> u8 {
    let y = x.expect("present");
    if y > 9 { panic!("nine"); }
    y
}
"#;
    let findings = scan_in("core", src);
    assert!(rules_of(&findings).contains(&"panic.expect"));
    assert!(rules_of(&findings).contains(&"panic.panic"));
}

#[test]
fn unreachable_and_assert_flagged() {
    let src =
        "fn f(n: u8) {\n    assert!(n < 4);\n    match n { 0..=3 => {}, _ => unreachable!() }\n}\n";
    let findings = scan_in("sore", src);
    assert_eq!(find(&findings, "panic.assert").line, 2);
    assert_eq!(find(&findings, "panic.unreachable").line, 3);
}

#[test]
fn bare_indexing_flagged_but_safe_access_not() {
    let bad = "fn f(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    let findings = scan_in("store", bad);
    assert_eq!(find(&findings, "panic.index").line, 2);

    let good = "fn f(v: &[u8]) -> u8 {\n    v.first().copied().unwrap_or(0)\n}\n";
    let findings = scan_in("store", good);
    assert!(
        !rules_of(&findings).contains(&"panic.index"),
        "get-based access must pass: {findings:?}"
    );
}

#[test]
fn attribute_and_type_brackets_are_not_indexing() {
    let src = "#[derive(Debug)]\nstruct S { buf: [u8; 4] }\nfn f(s: &S) -> [u8; 4] { s.buf }\n";
    let findings = scan_in("chain", src);
    assert!(
        findings.is_empty(),
        "type syntax must not be flagged: {findings:?}"
    );
}

#[test]
fn test_code_is_exempt_from_panic_rules() {
    let src = r#"
fn prod(x: Option<u8>) -> u8 { x.unwrap_or(0) }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1u8];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
"#;
    let findings = scan_in("chain", src);
    assert!(findings.is_empty(), "test code must pass: {findings:?}");
}

#[test]
fn non_panic_crates_may_unwrap() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let findings = scan_in("bench", src);
    assert!(
        !rules_of(&findings).contains(&"panic.unwrap"),
        "bench is not a panic-free crate: {findings:?}"
    );
}

// ------------------------------------------------------------------- ct --

#[test]
fn secret_equality_flagged_in_ct_crate_only() {
    let src = "fn check(secret_key: &[u8], other: &[u8]) -> bool {\n    secret_key == other\n}\n";
    let findings = scan_in("crypto", src);
    assert_eq!(find(&findings, "ct.secret_eq").line, 2);

    // The same comparison outside a CT crate is not a finding.
    let findings = scan_in("workload", src);
    assert!(!rules_of(&findings).contains(&"ct.secret_eq"));
}

#[test]
fn ct_eq_fold_idiom_passes() {
    let src = r#"
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = (a.len() ^ b.len()) as u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}
"#;
    let findings = scan_in("crypto", src);
    assert!(findings.is_empty(), "ct_eq fold must pass: {findings:?}");
}

#[test]
fn early_return_in_comparison_loop_flagged() {
    let src = r#"
pub fn bytes_eq(a: &[u8], b: &[u8]) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        if x != y {
            return false;
        }
    }
    true
}
"#;
    let findings = scan_in("bignum", src);
    assert!(
        rules_of(&findings).contains(&"ct.early_exit"),
        "data-dependent early return must be flagged: {findings:?}"
    );
}

// ------------------------------------------------------------------ det --

#[test]
fn hash_collections_wall_clocks_and_threads_flagged() {
    let src = r#"
use std::collections::HashMap;
fn f() {
    let m: HashMap<u8, u8> = HashMap::new();
    let _ = m;
    let _t = std::time::Instant::now();
    let _h = std::thread::spawn(|| 1u8);
}
"#;
    let findings = scan_in("workload", src);
    let rules = rules_of(&findings);
    assert!(rules.contains(&"det.hash_collection"));
    assert!(rules.contains(&"det.wall_clock"));
    assert!(rules.contains(&"det.thread"));
}

#[test]
fn telemetry_crate_is_exempt_from_det() {
    let src = "fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let findings = scan_in("telemetry", src);
    assert!(
        findings.is_empty(),
        "telemetry owns the clock: {findings:?}"
    );
}

#[test]
fn par_crate_threads_are_sanctioned_by_construction() {
    // The deterministic pool is the one place std::thread is legal — no
    // pragma involved, the policy itself exempts the crate.
    let src = r#"
fn fan_out() {
    std::thread::scope(|s| {
        s.spawn(|| 1u8);
    });
    let n = std::thread::available_parallelism();
    let _ = n;
}
"#;
    let findings = scan_in("par", src);
    assert!(
        findings.is_empty(),
        "slicer-par owns the sanctioned pool: {findings:?}"
    );

    // The exemption is det.thread-only: the rest of the det family still
    // applies inside crates/par.
    let clocky = "fn f() {\n    let _t = std::time::Instant::now();\n}\n";
    let findings = scan_in("par", clocky);
    assert!(rules_of(&findings).contains(&"det.wall_clock"));

    // And other crates remain barred from std::thread.
    let elsewhere = "fn f() {\n    std::thread::spawn(|| 1u8);\n}\n";
    let findings = scan_in("core", elsewhere);
    assert!(rules_of(&findings).contains(&"det.thread"));
}

#[test]
fn btreemap_passes_det() {
    let src = "use std::collections::BTreeMap;\nfn f() -> BTreeMap<u8, u8> { BTreeMap::new() }\n";
    let findings = scan_in("core", src);
    assert!(findings.is_empty(), "BTreeMap is fine: {findings:?}");
}

// --------------------------------------------------------------- pragma --

#[test]
fn pragma_with_reason_suppresses_the_finding() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    // slicer-lint: allow(panic.unwrap) — constructor contract, callers pass Some\n    x.unwrap()\n}\n";
    let findings = scan_in("chain", src);
    assert!(findings.is_empty(), "pragma'd site must pass: {findings:?}");
}

#[test]
fn pragma_without_reason_is_itself_a_finding() {
    let src =
        "fn f(x: Option<u8>) -> u8 {\n    // slicer-lint: allow(panic.unwrap)\n    x.unwrap()\n}\n";
    let findings = scan_in("chain", src);
    assert!(
        rules_of(&findings).contains(&"pragma.missing_reason"),
        "reasonless pragma must be rejected: {findings:?}"
    );
}

#[test]
fn pragma_only_suppresses_its_named_rule() {
    let src = "fn f(v: &[u8]) -> u8 {\n    // slicer-lint: allow(panic.unwrap) — wrong rule named\n    v[0]\n}\n";
    let findings = scan_in("chain", src);
    assert!(
        rules_of(&findings).contains(&"panic.index"),
        "a pragma for another rule must not suppress panic.index: {findings:?}"
    );
}

// -------------------------------------------------------------- ratchet --

fn finding(file: &str, rule: &'static str) -> Finding {
    Finding {
        file: file.to_string(),
        line: 1,
        rule,
        detail: String::new(),
    }
}

#[test]
fn ratchet_fails_when_a_count_grows() {
    let old = [finding("crates/chain/src/a.rs", "panic.unwrap")];
    let new = [
        finding("crates/chain/src/a.rs", "panic.unwrap"),
        finding("crates/chain/src/a.rs", "panic.unwrap"),
    ];
    let base = baseline::parse(&baseline::render(&old)).unwrap();
    let ratchet = baseline::ratchet(&group_counts(&new), &base);
    assert!(!ratchet.passed());
    assert_eq!(ratchet.grown.len(), 1);
    assert_eq!(ratchet.grown[0].found, 2);
    assert_eq!(ratchet.grown[0].allowed, 1);
}

#[test]
fn ratchet_passes_when_counts_shrink_and_update_rewrites() {
    let old = [
        finding("crates/chain/src/a.rs", "panic.unwrap"),
        finding("crates/chain/src/a.rs", "panic.unwrap"),
        finding("crates/core/src/b.rs", "panic.expect"),
    ];
    let new = [finding("crates/chain/src/a.rs", "panic.unwrap")];
    let base = baseline::parse(&baseline::render(&old)).unwrap();
    let ratchet = baseline::ratchet(&group_counts(&new), &base);
    assert!(ratchet.passed(), "shrinking is never a failure");
    assert_eq!(ratchet.shrunk.len(), 2, "both shrunk pairs reported");

    // --update-baseline semantics: re-render from current findings and the
    // ratchet is exactly tight again.
    let rewritten = baseline::parse(&baseline::render(&new)).unwrap();
    let tight = baseline::ratchet(&group_counts(&new), &rewritten);
    assert!(tight.passed());
    assert!(tight.shrunk.is_empty());
}

#[test]
fn baseline_roundtrips_through_render_and_parse() {
    let findings = [
        finding("crates/chain/src/a.rs", "panic.unwrap"),
        finding("crates/chain/src/a.rs", "det.wall_clock"),
        finding("crates/sore/src/c.rs", "ct.early_exit"),
    ];
    let counts = baseline::parse(&baseline::render(&findings)).unwrap();
    assert_eq!(counts, group_counts(&findings));
}
