//! Seeded violation: variable-time equality on secret material. The
//! binding name (`material`) defeats the name-based `ct.secret_eq` rule;
//! only value taint ties it back to the secret getter.

fn matches_stored(ks: &KeySet, candidate: &[u8]) -> bool {
    let material = ks.record_key();
    material == candidate
}
