//! Seeded violation: secret material encoded onto the wire protocol.

fn reply(stream: &mut Stream, prf: &Prf) -> io::Result<()> {
    write_message(stream, prf)
}
