//! Seeded violation: a secret-typed parameter reaches `format!`.

fn describe(key: &SymmetricKey) -> String {
    format!("loaded key {:?}", key)
}
