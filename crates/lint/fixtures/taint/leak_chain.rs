//! Seeded violation: interprocedural — the sink lives two calls away from
//! the secret, and the intermediate hops carry it as opaque bytes (no
//! secret type, no telltale name). The single finding must be attributed
//! to `top`'s call into `middle`, with the whole chain in the detail.

fn top(span: &mut Span) {
    // slicer-lint: secret — exported key bytes
    let material = export_bytes();
    middle(span, material);
}

fn middle(span: &mut Span, blob: &[u8]) {
    bottom(span, blob);
}

fn bottom(span: &mut Span, data: &[u8]) {
    span.attr("payload", data);
}
