//! Seeded violation: annotated secret reaches a telemetry attribute.
//! The binding is deliberately named `material` — nothing in the name
//! matches the `ct.secret_eq` heuristics, so only the taint engine can
//! find this flow.

fn record(span: &mut Span) {
    // slicer-lint: secret — derived PRF output kept private
    let material = load_from_vault();
    span.attr("vault.material", material);
}
