//! Seeded violation: secret material written to the durable frame store.

fn checkpoint(w: &mut Writer, keys: &KeySet) -> io::Result<()> {
    write_frames(w, keys)
}
