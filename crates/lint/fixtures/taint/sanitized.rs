//! The same five flows as the leak fixtures, each discharged by a
//! sanctioned sanitizer or structure-only accessor. Must produce zero
//! taint findings.

fn record(span: &mut Span) {
    // slicer-lint: secret — derived PRF output kept private
    let material = load_from_vault();
    span.attr("vault.material", sha256(material));
    span.attr("vault.len", material.len());
}

fn describe(key: &SymmetricKey) -> String {
    format!("loaded key of {} bytes", key.len())
}

fn checkpoint(w: &mut Writer, keys: &KeySet) -> io::Result<()> {
    write_frames(w, keys.public())
}

fn reply(stream: &mut Stream, prf: &Prf) -> io::Result<()> {
    write_message(stream, prf.derive(b"beacon", 1))
}

fn matches_stored(ks: &KeySet, candidate: &[u8]) -> bool {
    let hashed = sha256(ks.record_key());
    hashed == candidate
}
