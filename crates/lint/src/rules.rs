//! The three rule families and the per-crate policy that selects them.
//!
//! | family        | rules                                                   | applies to |
//! |---------------|---------------------------------------------------------|------------|
//! | panic-freedom | `panic.unwrap` `panic.expect` `panic.panic`             | chain, core, sore, store, accumulator |
//! |               | `panic.unreachable` `panic.assert` `panic.index`        | |
//! | constant-time | `ct.secret_eq` `ct.early_exit`                          | crypto, bignum, sore |
//! | determinism   | `det.hash_collection` `det.wall_clock` `det.thread`     | everything except telemetry; `det.thread` additionally exempts par |
//! | secret taint  | `taint.secret_to_{log,debug,persist,wire,ct}`           | crypto, core, sore, trapdoor, daemon, persist (see [`crate::taint`]) |
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt from
//! every family. Inline `// slicer-lint: allow(<rule>) — <reason>` pragmas
//! suppress a finding on their own or the following line; a pragma without
//! a reason is itself a violation (`pragma.missing_reason`).

use crate::lexer::{lex, Pragma, Tok, TokKind};
use std::collections::BTreeMap;

/// Every rule id the engine can emit, in stable report order.
pub const ALL_RULES: &[&str] = &[
    "panic.unwrap",
    "panic.expect",
    "panic.panic",
    "panic.unreachable",
    "panic.assert",
    "panic.index",
    "ct.secret_eq",
    "ct.early_exit",
    "det.hash_collection",
    "det.wall_clock",
    "det.thread",
    "taint.secret_to_log",
    "taint.secret_to_debug",
    "taint.secret_to_persist",
    "taint.secret_to_wire",
    "taint.secret_to_ct",
    "pragma.missing_reason",
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Short excerpt of the offending tokens.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.detail
        )
    }
}

/// Which families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Panic-freedom family.
    pub panic: bool,
    /// Constant-time family.
    pub ct: bool,
    /// Determinism family.
    pub det: bool,
    /// Whether `det.thread` applies. False only for the crates that *are*
    /// the sanctioned threading abstraction — exempt by construction, not
    /// by pragma.
    pub thread: bool,
}

/// Crates whose non-test code must be panic-free: the protocol, settlement
/// and proof layers, where a panic is an availability attack on fair
/// payment (Section IV-B of the paper), not a crash.
const PANIC_FREE_CRATES: &[&str] = &[
    "chain",
    "core",
    "sore",
    "store",
    "accumulator",
    "persist",
    "daemon",
];

/// Crates holding secret-dependent comparisons that must be constant-time.
const CT_CRATES: &[&str] = &["crypto", "bignum", "sore"];

/// Crates allowed to touch `std::thread`: only `slicer-par`, whose ordered
/// join and caller-thread telemetry make its fan-out deterministic by
/// construction. Everything else must go through its `Pool`.
const SANCTIONED_THREAD_CRATES: &[&str] = &["par"];

/// Derives the [`Policy`] for a workspace-relative path like
/// `crates/chain/src/chain.rs`. Unknown layouts get determinism-only.
pub fn policy_for(path: &str) -> Policy {
    let krate = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    // The telemetry crate *is* the sanctioned Clock abstraction.
    let det = krate != "telemetry";
    Policy {
        panic: PANIC_FREE_CRATES.contains(&krate),
        ct: CT_CRATES.contains(&krate),
        det,
        thread: det && !SANCTIONED_THREAD_CRATES.contains(&krate),
    }
}

/// Keywords that can directly precede `[` without it being an index
/// expression (slice patterns, `impl .. for ..`, etc.).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Identifier segments that mark an operand as secret material for
/// `ct.secret_eq`.
const SECRET_SEGMENTS: &[&str] = &[
    "key",
    "keys",
    "secret",
    "trapdoor",
    "token",
    "tokens",
    "mac",
    "tag",
    "digest",
    "cipher",
    "ciphertext",
    "nonce",
    "seed",
    "prf",
    "mask",
    "password",
    "sk",
];

/// Function-name segments that mark a comparison routine for
/// `ct.early_exit`.
const CT_FN_SEGMENTS: &[&str] = &["eq", "ne", "cmp", "compare", "verify", "ct"];

fn ident_has_segment(ident: &str, segments: &[&str]) -> bool {
    ident
        .split('_')
        .any(|s| segments.contains(&s.to_ascii_lowercase().as_str()))
}

/// Scans one source file (already workspace-relative) and returns its
/// findings, pragma suppression applied.
pub fn scan_source(path: &str, src: &str) -> Vec<Finding> {
    let policy = policy_for(path);
    let lexed = lex(src);
    let mut raw = scan_tokens(path, &lexed.tokens, policy);
    apply_pragmas(path, &lexed.pragmas, &mut raw);
    raw
}

/// A scope opened by `{`: what construct owns it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Scope {
    /// Function body, with the function's name.
    Fn(String),
    /// Loop body (`for` / `while` / `loop`).
    Loop,
    /// Anything else (blocks, modules, match arms, structs…).
    Plain,
}

fn scan_tokens(path: &str, toks: &[Tok], policy: Policy) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut pending_loop = false;
    let mut i = 0usize;

    let finding = |out: &mut Vec<Finding>, line: u32, rule: &'static str, detail: String| {
        out.push(Finding {
            file: path.to_string(),
            line,
            rule,
            detail,
        });
    };

    while i < toks.len() {
        // `#[test]` / `#[cfg(test)]`-guarded items are exempt wholesale.
        if toks[i].text == "#" && is_test_attr(toks, i) {
            i = skip_item(toks, i);
            continue;
        }
        let t = &toks[i];
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(i + 1);
        let text = t.text.as_str();

        // --- scope tracking (needed by ct.early_exit) ---------------------
        match text {
            "{" => {
                if pending_loop {
                    scopes.push(Scope::Loop);
                } else if let Some(name) = pending_fn.take() {
                    scopes.push(Scope::Fn(name));
                } else {
                    scopes.push(Scope::Plain);
                }
                pending_loop = false;
            }
            "}" => {
                scopes.pop();
            }
            "fn" if t.kind == TokKind::Ident => {
                pending_fn = next
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text.clone());
            }
            "loop" | "while" if t.kind == TokKind::Ident => pending_loop = true,
            "for" if t.kind == TokKind::Ident => {
                // `impl Trait for Type` / `for<'a>` are not loops: a loop
                // `for` is never preceded by an identifier or `>`.
                let loopish = !matches!(
                    prev.map(|p| (p.kind, p.text.as_str())),
                    Some((TokKind::Ident, _)) | Some((_, ">"))
                );
                if loopish {
                    pending_loop = true;
                }
            }
            _ => {}
        }

        // --- panic-freedom ------------------------------------------------
        if policy.panic && t.kind == TokKind::Ident {
            let dotted = prev.is_some_and(|p| p.text == ".");
            let called = next.is_some_and(|n| n.text == "(");
            let banged = next.is_some_and(|n| n.text == "!");
            match text {
                "unwrap" | "unwrap_err" if dotted && called => {
                    finding(&mut out, t.line, "panic.unwrap", format!(".{text}()"));
                }
                "expect" | "expect_err" if dotted && called => {
                    finding(&mut out, t.line, "panic.expect", format!(".{text}(..)"));
                }
                "panic" | "todo" | "unimplemented" if banged => {
                    finding(&mut out, t.line, "panic.panic", format!("{text}!"));
                }
                "unreachable" if banged => {
                    finding(&mut out, t.line, "panic.unreachable", "unreachable!".into());
                }
                "assert" | "assert_eq" | "assert_ne" if banged => {
                    finding(&mut out, t.line, "panic.assert", format!("{text}!"));
                }
                _ => {}
            }
        }
        if policy.panic && text == "[" && t.kind == TokKind::Punct {
            let indexing = prev.is_some_and(|p| match p.kind {
                TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                TokKind::Num | TokKind::Str => true,
                TokKind::Punct => p.text == ")" || p.text == "]",
                _ => false,
            });
            if indexing {
                let base = prev.map(|p| p.text.clone()).unwrap_or_default();
                finding(&mut out, t.line, "panic.index", format!("{base}[..]"));
            }
        }

        // --- constant-time ------------------------------------------------
        if policy.ct && t.kind == TokKind::Punct && (text == "==" || text == "!=") {
            let lo = i.saturating_sub(8);
            let hi = (i + 9).min(toks.len());
            let secret = toks[lo..hi]
                .iter()
                .find(|w| w.kind == TokKind::Ident && ident_has_segment(&w.text, SECRET_SEGMENTS));
            if let Some(s) = secret {
                finding(
                    &mut out,
                    t.line,
                    "ct.secret_eq",
                    format!("`{text}` near secret operand `{}` (use ct_eq)", s.text),
                );
            }
        }
        if policy.ct
            && t.kind == TokKind::Ident
            && (text == "return" || text == "break")
            && in_ct_comparison_loop(&scopes)
        {
            finding(
                &mut out,
                t.line,
                "ct.early_exit",
                format!("data-dependent `{text}` inside a comparison loop"),
            );
        }

        // --- determinism --------------------------------------------------
        if policy.det && t.kind == TokKind::Ident {
            match text {
                "HashMap" | "HashSet" => finding(
                    &mut out,
                    t.line,
                    "det.hash_collection",
                    format!("{text} (iteration order is nondeterministic; use BTreeMap/BTreeSet)"),
                ),
                "SystemTime" => finding(
                    &mut out,
                    t.line,
                    "det.wall_clock",
                    "SystemTime (use slicer_telemetry::Clock)".into(),
                ),
                "Instant"
                    if next.is_some_and(|n| n.text == "::")
                        && toks.get(i + 2).is_some_and(|n| n.text == "now") =>
                {
                    finding(
                        &mut out,
                        t.line,
                        "det.wall_clock",
                        "Instant::now (use slicer_telemetry::Clock)".into(),
                    );
                }
                "thread"
                    if policy.thread
                        && (prev.is_some_and(|p| p.text == "::")
                            || next.is_some_and(|n| n.text == "::")) =>
                {
                    finding(
                        &mut out,
                        t.line,
                        "det.thread",
                        "std::thread (nondeterministic scheduling)".into(),
                    );
                }
                _ => {}
            }
        }

        i += 1;
    }
    out
}

/// Is the innermost function a comparison routine, with a loop opened
/// inside it? (`return`/`break` there leaks the mismatch position through
/// timing.)
fn in_ct_comparison_loop(scopes: &[Scope]) -> bool {
    let Some(fn_idx) = scopes
        .iter()
        .rposition(|s| matches!(s, Scope::Fn(_)))
        .filter(|&idx| match &scopes[idx] {
            Scope::Fn(name) => ident_has_segment(name, CT_FN_SEGMENTS),
            _ => false,
        })
    else {
        return false;
    };
    scopes[fn_idx..].contains(&Scope::Loop)
}

/// At a `#` token: does an attribute marking test code start here?
/// Recognizes `#[test]`, `#[cfg(test)]` and `#[cfg(any(test, ..))]` but
/// not `#[cfg(not(test))]`.
pub(crate) fn is_test_attr(toks: &[Tok], i: usize) -> bool {
    if toks.get(i + 1).is_none_or(|t| t.text != "[") {
        return false;
    }
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    for t in &toks[i + 1..] {
        match t.text.as_str() {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ if t.kind == TokKind::Ident => idents.push(&t.text),
            _ => {}
        }
    }
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// From a test attribute at `i`, returns the index just past the guarded
/// item (skipping any further attributes, then either a `;`-terminated
/// item or a braced body).
pub(crate) fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    // Skip consecutive attributes.
    while toks.get(i).is_some_and(|t| t.text == "#")
        && toks.get(i + 1).is_some_and(|t| t.text == "[")
    {
        let mut depth = 0usize;
        i += 1;
        while let Some(t) = toks.get(i) {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Consume the item: to the matching `}` of its first brace, or to a
    // top-level `;` (e.g. `#[cfg(test)] use super::*;`). Depth counts all
    // bracket kinds so `;` inside `[u8; 4]` or `(..)` does not end early.
    let mut depth = 0usize;
    while let Some(t) = toks.get(i) {
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Applies pragma suppression: a pragma covers findings of its rule on the
/// pragma's own line and the next line. Pragmas lacking a reason become
/// `pragma.missing_reason` findings; pragmas naming an unknown rule are
/// reported the same way (a typo must not silently disable coverage).
fn apply_pragmas(path: &str, pragmas: &[Pragma], findings: &mut Vec<Finding>) {
    for p in pragmas {
        let valid = !p.reason.is_empty() && ALL_RULES.contains(&p.rule.as_str());
        if valid {
            findings.retain(|f| f.rule != p.rule || (f.line != p.line && f.line != p.line + 1));
        } else {
            findings.push(Finding {
                file: path.to_string(),
                line: p.line,
                rule: "pragma.missing_reason",
                detail: if p.rule.is_empty() || !ALL_RULES.contains(&p.rule.as_str()) {
                    format!("malformed pragma or unknown rule `{}`", p.rule)
                } else {
                    "pragma must carry a justification after the rule".into()
                },
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
}

/// Groups findings into `(file, rule) -> count`, the unit the baseline
/// ratchet compares.
pub fn group_counts(findings: &[Finding]) -> BTreeMap<(String, String), usize> {
    let mut m = BTreeMap::new();
    for f in findings {
        *m.entry((f.file.clone(), f.rule.to_string())).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHAIN: &str = "crates/chain/src/x.rs";
    const CRYPTO: &str = "crates/crypto/src/x.rs";

    fn rules_of(path: &str, src: &str) -> Vec<&'static str> {
        scan_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn policy_selects_families_by_crate() {
        assert_eq!(
            policy_for("crates/chain/src/chain.rs"),
            Policy {
                panic: true,
                ct: false,
                det: true,
                thread: true
            }
        );
        assert_eq!(
            policy_for("crates/telemetry/src/clock.rs"),
            Policy {
                panic: false,
                ct: false,
                det: false,
                thread: false
            }
        );
        assert!(policy_for("crates/sore/src/tuple.rs").ct);
        assert!(policy_for("src/lib.rs").det);
        assert!(policy_for("src/lib.rs").thread);
        // The durable store and the serving daemon must survive corrupt
        // input without dying: both are panic-free layers.
        assert!(policy_for("crates/persist/src/store.rs").panic);
        assert!(policy_for("crates/daemon/src/lib.rs").panic);
    }

    #[test]
    fn par_is_thread_sanctioned_but_not_det_exempt() {
        let policy = policy_for("crates/par/src/lib.rs");
        assert!(!policy.thread, "par owns the sanctioned thread pool");
        assert!(policy.det, "other det rules still apply to par");
        let src = "fn f() { std::thread::scope(|s| { let _ = s; }); }";
        assert!(rules_of("crates/par/src/lib.rs", src).is_empty());
        let clocky = "fn f() -> std::time::Instant { std::time::Instant::now() }";
        assert!(rules_of("crates/par/src/lib.rs", clocky).contains(&"det.wall_clock"));
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "
            fn f(x: Option<u8>) { x.unwrap(); }
            #[cfg(test)]
            mod tests { fn g(x: Option<u8>) { x.unwrap(); } }
        ";
        assert_eq!(rules_of(CHAIN, src), vec!["panic.unwrap"]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))] fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(rules_of(CHAIN, src), vec!["panic.unwrap"]);
    }

    #[test]
    fn indexing_heuristic_avoids_types_and_patterns() {
        let good = "
            fn f(x: &[u8]) -> [u8; 4] { *b }
            fn g() { let [a, b] = y; let v = vec![1]; }
            #[derive(Debug)]
            struct S;
        ";
        assert!(rules_of(CHAIN, good).is_empty());
        let bad = "fn f(x: &[u8], i: usize) -> u8 { x[i] }";
        assert_eq!(rules_of(CHAIN, bad), vec!["panic.index"]);
    }

    #[test]
    fn ct_early_exit_only_in_comparison_fns() {
        let bad = "fn ct_eq(a: &[u8], b: &[u8]) -> bool {
            for i in 0..a.len() { if a[i] != b[i] { return false; } } true }";
        let rules = rules_of(CRYPTO, bad);
        assert!(rules.contains(&"ct.early_exit"), "{rules:?}");
        let fine = "fn sum(a: &[u8]) -> u32 {
            let mut s = 0; for i in 0..a.len() { if a[i] == 0 { break; } s += 1; } s }";
        assert!(!rules_of(CRYPTO, fine).contains(&"ct.early_exit"));
    }

    #[test]
    fn pragma_suppresses_with_reason_only() {
        let with = "fn f() { m.get(k); } // slicer-lint: allow(det.hash_collection) — x\n\
                    fn g() { let m: HashMap<u8, u8> = HashMap::new(); }";
        // Pragma covers its line + the next: both HashMap hits are on line 2.
        assert!(rules_of(CHAIN, with).is_empty());
        let without = "// slicer-lint: allow(det.hash_collection)\n\
                       fn g(m: HashMap<u8, u8>) {}";
        let rules = rules_of(CHAIN, without);
        assert!(rules.contains(&"pragma.missing_reason"));
        assert!(rules.contains(&"det.hash_collection"));
    }
}
