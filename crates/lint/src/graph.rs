//! Workspace symbol table and call graph over [`crate::parser`] output.
//!
//! Resolution is name-based: a call site `f(..)` or `.f(..)` resolves to
//! every parsed function named `f`. That is deliberately conservative for a
//! lint — with at most a handful of same-named functions per workspace, a
//! tainted argument is checked against each candidate's summary and the
//! worst case wins.

use crate::lexer::{Tok, TokKind};
use crate::parser::ParsedFile;
use std::collections::BTreeMap;

/// Identifies a function as `(file index, fn index)` into the parsed
/// workspace.
pub type FnId = (usize, usize);

/// Name → candidate definitions, over all parsed files.
#[derive(Debug, Default)]
pub struct SymbolTable {
    by_name: BTreeMap<String, Vec<FnId>>,
}

impl SymbolTable {
    /// Builds the table from every function in every file.
    pub fn build(files: &[ParsedFile]) -> Self {
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }
        SymbolTable { by_name }
    }

    /// All definitions of `name` (empty slice when unknown).
    pub fn resolve(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct function names.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when no functions were parsed.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name.
    pub name: String,
    /// Token index of the callee identifier in the body.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// True for `.name(..)` method calls (receiver precedes the dot).
    pub method: bool,
}

/// Extracts every `name(` / `.name(` call site from a body token slice.
/// Macro invocations (`name!(..)`) and definitions (`fn name(`) are not
/// call sites.
pub fn call_sites(body: &[Tok]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let called = body.get(i + 1).is_some_and(|n| n.text == "(");
        if !called {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| body[p].text.as_str());
        if prev == Some("fn") {
            continue;
        }
        out.push(CallSite {
            name: t.text.clone(),
            tok: i,
            line: t.line,
            method: prev == Some("."),
        });
    }
    out
}

/// The workspace call graph: caller → unique callee names that resolve in
/// the symbol table. Used to order and bound the taint fixpoint, and by
/// tests to pin reachability.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[caller] = sorted unique resolved callee names`.
    pub edges: BTreeMap<String, Vec<String>>,
}

impl CallGraph {
    /// Builds the graph from every parsed function body.
    pub fn build(files: &[ParsedFile], table: &SymbolTable) -> Self {
        let mut edges: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for file in files {
            for f in &file.fns {
                let entry = edges.entry(f.name.clone()).or_default();
                for call in call_sites(&f.body) {
                    if !table.resolve(&call.name).is_empty() && !entry.contains(&call.name) {
                        entry.push(call.name.clone());
                    }
                }
                entry.sort();
            }
        }
        CallGraph { edges }
    }

    /// Callee names of `caller` (empty when unknown or leaf).
    pub fn callees(&self, caller: &str) -> &[String] {
        self.edges.get(caller).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    #[test]
    fn table_resolves_across_files() {
        let a = parse_file("crates/core/src/a.rs", "fn alpha() { beta(); }");
        let b = parse_file("crates/core/src/b.rs", "fn beta() {}");
        let files = vec![a, b];
        let table = SymbolTable::build(&files);
        assert_eq!(table.resolve("beta"), &[(1, 0)]);
        assert!(table.resolve("gamma").is_empty());
    }

    #[test]
    fn call_sites_skip_macros_and_defs() {
        let f = parse_file(
            "crates/core/src/x.rs",
            "fn f() { g(); h.method(); println!(\"x\"); }",
        );
        let calls = call_sites(&f.fns[0].body);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["g", "method"]);
        assert!(calls[1].method);
        assert!(!calls[0].method);
    }

    #[test]
    fn graph_keeps_only_resolved_edges() {
        let src = "fn top() { mid(); std_only(); }\nfn mid() { top(); }\n";
        let files = vec![parse_file("crates/core/src/x.rs", src)];
        let table = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &table);
        assert_eq!(graph.callees("top"), ["mid"]);
        assert_eq!(graph.callees("mid"), ["top"], "recursion is representable");
    }
}
