//! CLI driver: `cargo run -p slicer-lint -- [--check|--update-baseline|--list]`.
//!
//! * `--check` (default) — scan the workspace, compare against
//!   `lint-baseline.txt`, exit 1 if any `(rule, file)` count grew.
//! * `--update-baseline` — rewrite the baseline from the current scan
//!   (shrinking the ratchet as sites are fixed).
//! * `--list` — print every current finding (including grandfathered
//!   ones) without judging.
//! * `--strict` — with `--check`, also fail when the baseline is stale
//!   (counts shrank without `--update-baseline`).
//! * `--format json` — machine-readable output: one JSON object with the
//!   findings, mode verdict and per-family totals (for CI consumers).
//! * `--root <dir>` — workspace root (default: the lint crate's
//!   grandparent, i.e. the repo root when run via cargo).

use slicer_lint::{baseline, rules, scan_workspace, Finding, BASELINE_FILE};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    mode: Mode,
    strict: bool,
    json: bool,
    root: PathBuf,
}

#[derive(PartialEq, Eq)]
enum Mode {
    Check,
    UpdateBaseline,
    List,
}

fn parse_args() -> Result<Args, String> {
    let mut mode = Mode::Check;
    let mut strict = false;
    let mut json = false;
    let mut root = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => mode = Mode::Check,
            "--update-baseline" => mode = Mode::UpdateBaseline,
            "--list" => mode = Mode::List,
            "--strict" => strict = true,
            "--format" => match it.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return Err(format!(
                        "--format wants json or text, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--help" | "-h" => {
                println!(
                    "usage: slicer-lint [--check|--update-baseline|--list] [--strict] [--format json|text] [--root DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}; try --help")),
        }
    }
    let root = match root {
        Some(r) => r,
        // CARGO_MANIFEST_DIR = <root>/crates/lint.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .ok_or("cannot locate workspace root; pass --root")?
            .to_path_buf(),
    };
    Ok(Args {
        mode,
        strict,
        json,
        root,
    })
}

/// Minimal RFC 8259 string escaping (the linter is zero-dependency).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn findings_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                json_escape(f.rule),
                json_escape(&f.detail)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn families_json(findings: &[Finding]) -> String {
    let mut totals: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *totals
            .entry(f.rule.split('.').next().unwrap_or(f.rule))
            .or_insert(0) += 1;
    }
    let items: Vec<String> = totals
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
        .collect();
    format!("{{{}}}", items.join(","))
}

fn regressions_json(regs: &[baseline::Regression]) -> String {
    let items: Vec<String> = regs
        .iter()
        .map(|r| {
            format!(
                "{{\"file\":\"{}\",\"rule\":\"{}\",\"found\":{},\"allowed\":{}}}",
                json_escape(&r.file),
                json_escape(&r.rule),
                r.found,
                r.allowed
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// The complete machine-readable report: status, findings, per-family
/// totals, and (in check mode) the ratchet comparison.
fn report_json(status: &str, findings: &[Finding], ratchet: Option<&baseline::Ratchet>) -> String {
    let mut fields = vec![
        format!("\"status\":\"{}\"", json_escape(status)),
        format!("\"findings\":{}", findings_json(findings)),
        format!("\"families\":{}", families_json(findings)),
    ];
    if let Some(r) = ratchet {
        fields.push(format!("\"regressions\":{}", regressions_json(&r.grown)));
        fields.push(format!("\"stale\":{}", regressions_json(&r.shrunk)));
    }
    format!("{{{}}}", fields.join(","))
}

fn family_summary(findings: &[Finding]) -> String {
    let mut totals: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *totals
            .entry(f.rule.split('.').next().unwrap_or(f.rule))
            .or_insert(0) += 1;
    }
    let parts: Vec<String> = totals.iter().map(|(k, v)| format!("{k}={v}")).collect();
    if parts.is_empty() {
        "clean".to_string()
    } else {
        parts.join(" ")
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("slicer-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = match scan_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("slicer-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    match args.mode {
        Mode::List => {
            if args.json {
                println!("{}", report_json("listed", &findings, None));
                return ExitCode::SUCCESS;
            }
            for f in &findings {
                println!("{f}");
            }
            println!(
                "slicer-lint: {} finding(s) ({})",
                findings.len(),
                family_summary(&findings)
            );
            ExitCode::SUCCESS
        }
        Mode::UpdateBaseline => {
            let path = args.root.join(BASELINE_FILE);
            if let Err(e) = std::fs::write(&path, baseline::render(&findings)) {
                eprintln!("slicer-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!(
                "slicer-lint: baseline updated — {} grandfathered site(s) ({})",
                findings.len(),
                family_summary(&findings)
            );
            ExitCode::SUCCESS
        }
        Mode::Check => {
            let path = args.root.join(BASELINE_FILE);
            let base = match std::fs::read_to_string(&path) {
                Ok(text) => match baseline::parse(&text) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("slicer-lint: {e}");
                        return ExitCode::from(2);
                    }
                },
                // No baseline yet: everything current must be clean.
                Err(_) => baseline::Counts::new(),
            };
            let current = rules::group_counts(&findings);
            let ratchet = baseline::ratchet(&current, &base);

            if args.json {
                let stale_fails = args.strict && !ratchet.shrunk.is_empty();
                let status = if !ratchet.passed() {
                    "ratchet_violation"
                } else if stale_fails {
                    "stale_baseline"
                } else {
                    "ok"
                };
                println!("{}", report_json(status, &findings, Some(&ratchet)));
                return if status == "ok" {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }

            for g in &ratchet.grown {
                eprintln!(
                    "slicer-lint: RATCHET VIOLATION {}: [{}] {} site(s), baseline allows {}",
                    g.file, g.rule, g.found, g.allowed
                );
                for f in findings
                    .iter()
                    .filter(|f| f.file == g.file && f.rule == g.rule)
                {
                    eprintln!("  {f}");
                }
            }
            for s in &ratchet.shrunk {
                eprintln!(
                    "slicer-lint: note: {} [{}] shrank {} -> {}; run --update-baseline to ratchet",
                    s.file, s.rule, s.allowed, s.found
                );
            }
            let stale_fails = args.strict && !ratchet.shrunk.is_empty();
            if ratchet.passed() && !stale_fails {
                println!(
                    "slicer-lint: OK — {} grandfathered site(s) ({}), ratchet holds",
                    findings.len(),
                    family_summary(&findings)
                );
                ExitCode::SUCCESS
            } else {
                if stale_fails && ratchet.passed() {
                    eprintln!("slicer-lint: FAILED (--strict): baseline is stale");
                } else {
                    eprintln!(
                        "slicer-lint: FAILED — fix the new sites, add a justified pragma, or (only for pre-existing debt) --update-baseline"
                    );
                }
                ExitCode::FAILURE
            }
        }
    }
}
