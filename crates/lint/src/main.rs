//! CLI driver: `cargo run -p slicer-lint -- [--check|--update-baseline|--list]`.
//!
//! * `--check` (default) — scan the workspace, compare against
//!   `lint-baseline.txt`, exit 1 if any `(rule, file)` count grew.
//! * `--update-baseline` — rewrite the baseline from the current scan
//!   (shrinking the ratchet as sites are fixed).
//! * `--list` — print every current finding (including grandfathered
//!   ones) without judging.
//! * `--strict` — with `--check`, also fail when the baseline is stale
//!   (counts shrank without `--update-baseline`).
//! * `--root <dir>` — workspace root (default: the lint crate's
//!   grandparent, i.e. the repo root when run via cargo).

use slicer_lint::{baseline, rules, scan_workspace, Finding, BASELINE_FILE};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    mode: Mode,
    strict: bool,
    root: PathBuf,
}

#[derive(PartialEq, Eq)]
enum Mode {
    Check,
    UpdateBaseline,
    List,
}

fn parse_args() -> Result<Args, String> {
    let mut mode = Mode::Check;
    let mut strict = false;
    let mut root = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => mode = Mode::Check,
            "--update-baseline" => mode = Mode::UpdateBaseline,
            "--list" => mode = Mode::List,
            "--strict" => strict = true,
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--help" | "-h" => {
                println!(
                    "usage: slicer-lint [--check|--update-baseline|--list] [--strict] [--root DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}; try --help")),
        }
    }
    let root = match root {
        Some(r) => r,
        // CARGO_MANIFEST_DIR = <root>/crates/lint.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .ok_or("cannot locate workspace root; pass --root")?
            .to_path_buf(),
    };
    Ok(Args { mode, strict, root })
}

fn family_summary(findings: &[Finding]) -> String {
    let mut totals: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *totals
            .entry(f.rule.split('.').next().unwrap_or(f.rule))
            .or_insert(0) += 1;
    }
    let parts: Vec<String> = totals.iter().map(|(k, v)| format!("{k}={v}")).collect();
    if parts.is_empty() {
        "clean".to_string()
    } else {
        parts.join(" ")
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("slicer-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = match scan_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("slicer-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    match args.mode {
        Mode::List => {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "slicer-lint: {} finding(s) ({})",
                findings.len(),
                family_summary(&findings)
            );
            ExitCode::SUCCESS
        }
        Mode::UpdateBaseline => {
            let path = args.root.join(BASELINE_FILE);
            if let Err(e) = std::fs::write(&path, baseline::render(&findings)) {
                eprintln!("slicer-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!(
                "slicer-lint: baseline updated — {} grandfathered site(s) ({})",
                findings.len(),
                family_summary(&findings)
            );
            ExitCode::SUCCESS
        }
        Mode::Check => {
            let path = args.root.join(BASELINE_FILE);
            let base = match std::fs::read_to_string(&path) {
                Ok(text) => match baseline::parse(&text) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("slicer-lint: {e}");
                        return ExitCode::from(2);
                    }
                },
                // No baseline yet: everything current must be clean.
                Err(_) => baseline::Counts::new(),
            };
            let current = rules::group_counts(&findings);
            let ratchet = baseline::ratchet(&current, &base);

            for g in &ratchet.grown {
                eprintln!(
                    "slicer-lint: RATCHET VIOLATION {}: [{}] {} site(s), baseline allows {}",
                    g.file, g.rule, g.found, g.allowed
                );
                for f in findings
                    .iter()
                    .filter(|f| f.file == g.file && f.rule == g.rule)
                {
                    eprintln!("  {f}");
                }
            }
            for s in &ratchet.shrunk {
                eprintln!(
                    "slicer-lint: note: {} [{}] shrank {} -> {}; run --update-baseline to ratchet",
                    s.file, s.rule, s.allowed, s.found
                );
            }
            let stale_fails = args.strict && !ratchet.shrunk.is_empty();
            if ratchet.passed() && !stale_fails {
                println!(
                    "slicer-lint: OK — {} grandfathered site(s) ({}), ratchet holds",
                    findings.len(),
                    family_summary(&findings)
                );
                ExitCode::SUCCESS
            } else {
                if stale_fails && ratchet.passed() {
                    eprintln!("slicer-lint: FAILED (--strict): baseline is stale");
                } else {
                    eprintln!(
                        "slicer-lint: FAILED — fix the new sites, add a justified pragma, or (only for pre-existing debt) --update-baseline"
                    );
                }
                ExitCode::FAILURE
            }
        }
    }
}
