//! # slicer-lint
//!
//! A from-scratch, zero-dependency static-analysis pass over every
//! workspace `src/` file, enforcing three invariant families the compiler
//! cannot check but Slicer's security argument depends on:
//!
//! 1. **Panic-freedom** in the protocol/settlement crates (`chain`,
//!    `core`, `sore`, `store`, `accumulator`): a panicking verifier is an
//!    availability attack on fair payment (Section IV-B), so `unwrap()`,
//!    `expect(..)`, `panic!`, `unreachable!`, `assert!` and bare slice
//!    indexing are denied in non-test code.
//! 2. **Constant-time discipline** in `crypto`, `bignum` and `sore`:
//!    `==`/`!=` on secret-named operands and early exits inside comparison
//!    loops leak through timing, breaking the IND-OCPA-style leakage
//!    bound — `ct_eq`-style primitives are the sanctioned alternative.
//! 3. **Determinism** everywhere outside `crates/telemetry`'s Clock
//!    abstraction: `HashMap`/`HashSet` iteration order, `SystemTime`,
//!    `Instant::now` and `std::thread` all make same-seed transcripts
//!    diverge, which the determinism suite forbids.
//!
//! Existing violations are grandfathered in `lint-baseline.txt` with a
//! strict ratchet (counts may only shrink); new code must be clean or
//! carry an inline `// slicer-lint: allow(<rule>) — <reason>` pragma.
//!
//! Run it as `cargo run -p slicer-lint -- --check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod taint;

pub use rules::{policy_for, scan_source, Finding, Policy, ALL_RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Collects every `.rs` file the linter covers: `crates/*/src/**` plus the
/// root `src/**`, sorted for deterministic output.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories).
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every covered file under `root` and returns all findings —
/// per-file token rules plus the workspace-wide interprocedural taint
/// analysis — with paths made workspace-relative (forward slashes).
///
/// # Errors
///
/// Propagates filesystem errors (unreadable files).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut sources = Vec::new();
    for path in collect_files(root)? {
        let rel = relative_path(root, &path);
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(scan_sources(&sources))
}

/// Scans a set of in-memory `(workspace-relative path, source)` pairs:
/// per-file token rules plus the cross-file taint analysis over the whole
/// set. This is the engine behind [`scan_workspace`], exposed so fixtures
/// and tests can lint synthetic workspaces without touching the
/// filesystem.
pub fn scan_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, src) in sources {
        findings.extend(scan_source(rel, src));
    }
    let parsed: Vec<parser::ParsedFile> = sources
        .iter()
        .map(|(rel, src)| parser::parse_file(rel, src))
        .collect();
    findings.extend(taint::analyze(&parsed));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// `root`-relative path with forward slashes (baseline entries must not
/// depend on the host OS).
pub fn relative_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
