//! A lightweight Rust lexer: string/char/comment-aware tokenization with
//! line numbers, plus extraction of `// slicer-lint: allow(..)` pragmas.
//!
//! This is deliberately *not* a full Rust grammar (no `syn`, no deps): the
//! rule engine only needs a faithful token stream where comments, string
//! literals, char literals and lifetimes can never be mistaken for code.

/// Token classification, as coarse as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String literal (incl. raw and byte strings).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation / operator (possibly multi-char, e.g. `==`, `::`).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// Classification.
    pub kind: TokKind,
    /// Verbatim text (for `Str`, the opening delimiter only — rules never
    /// need string contents, and dropping them keeps findings readable).
    pub text: String,
}

/// An inline suppression: `// slicer-lint: allow(<rule>) — <reason>`.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// The rule id inside `allow(..)`.
    pub rule: String,
    /// Free-text justification after the rule (may be empty — the rule
    /// engine rejects pragmas without one).
    pub reason: String,
}

/// Output of [`lex`]: the token stream plus any pragmas found in comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Pragmas in source order.
    pub pragmas: Vec<Pragma>,
    /// Lines carrying a `// slicer-lint: secret` annotation, marking the
    /// binding declared on that line (or the next) as secret material for
    /// the taint analysis.
    pub secret_lines: Vec<u32>,
}

/// Multi-char operators, longest first so greedy matching is unambiguous.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes `src` into tokens and pragmas. Never fails: unterminated literals
/// simply consume to end of input (the compiler rejects such files anyway).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                // Doc comments (`///`, `//!`) are documentation — text in
                // them describing the pragma syntax must not act as one.
                let doc = matches!(b.get(start + 2), Some(&b'/') | Some(&b'!'));
                if !doc {
                    scan_pragma(
                        &src[start..i],
                        line,
                        &mut out.pragmas,
                        &mut out.secret_lines,
                    );
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Str,
                    text: "\"".into(),
                });
                i = skip_string(b, i, &mut line);
            }
            b'r' | b'b' if is_raw_or_byte_literal(b, i) => {
                let (next, kind) = skip_prefixed_literal(b, i, &mut line);
                let text = match kind {
                    // String contents are irrelevant to every rule; keep
                    // the token text small and grep-proof.
                    TokKind::Str => String::from("\""),
                    _ => src[i..next].to_string(),
                };
                out.tokens.push(Tok { line, kind, text });
                i = next;
            }
            b'\'' => {
                // Lifetime vs char literal.
                let (next, kind, text) = lex_quote(src, b, i);
                out.tokens.push(Tok { line, kind, text });
                for &ch in &b[i..next] {
                    if ch == b'\n' {
                        line += 1;
                    }
                }
                i = next;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                // Fractional part — but not a `..` range.
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                }
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                });
            }
            _ => {
                let rest = &src[i..];
                let text = MULTI_PUNCT
                    .iter()
                    .find(|p| rest.starts_with(**p))
                    .map_or_else(|| src[i..i + 1].to_string(), |p| (*p).to_string());
                i += text.len();
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Punct,
                    text,
                });
            }
        }
    }
    out
}

/// Is `b[i..]` the start of a raw string, raw ident, byte string or byte
/// char (`r"`, `r#`, `b"`, `b'`, `br`)? Plain idents starting with r/b are
/// handled by the identifier arm instead.
fn is_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    match (b[i], b.get(i + 1)) {
        (b'r', Some(&b'"')) | (b'r', Some(&b'#')) => true,
        (b'b', Some(&b'"')) | (b'b', Some(&b'\'')) => true,
        (b'b', Some(&b'r')) => matches!(b.get(i + 2), Some(&b'"') | Some(&b'#')),
        _ => false,
    }
}

/// Skips a literal introduced by an `r`/`b`/`br` prefix; returns the index
/// past it and its token kind. Raw idents (`r#name`) come back as `Ident`.
fn skip_prefixed_literal(b: &[u8], i: usize, line: &mut u32) -> (usize, TokKind) {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        j += 1;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    match b.get(j) {
        Some(&b'"') => {
            // (Raw) string: scan to closing quote + same number of hashes.
            j += 1;
            let raw = hashes > 0 || b[i] == b'r' || (b[i] == b'b' && b.get(i + 1) == Some(&b'r'));
            loop {
                match b.get(j) {
                    None => return (j, TokKind::Str),
                    Some(&b'\n') => *line += 1,
                    Some(&b'\\') if !raw => j += 1,
                    Some(&b'"') => {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while seen < hashes && b.get(k) == Some(&b'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            return (k, TokKind::Str);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        Some(&b'\'') => {
            // Byte char b'x'.
            j += 1;
            if b.get(j) == Some(&b'\\') {
                j += 1;
            }
            j += 1;
            if b.get(j) == Some(&b'\'') {
                j += 1;
            }
            (j, TokKind::Char)
        }
        // `r#ident` raw identifier.
        _ => {
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            (j, TokKind::Ident)
        }
    }
}

/// Skips a normal `"..."` string starting at the opening quote.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 1,
            b'\n' => *line += 1,
            b'"' => return j + 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'`.
fn lex_quote(src: &str, b: &[u8], i: usize) -> (usize, TokKind, String) {
    // Escape sequence: definitely a char literal. Skip the escaped
    // character itself first, so `'\''` does not close on its own escape.
    if b.get(i + 1) == Some(&b'\\') {
        let mut j = (i + 3).min(b.len());
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return ((j + 1).min(b.len()), TokKind::Char, String::from("'\\'"));
    }
    // `'x` where x is ident-ish: lifetime unless closed by another quote.
    if b.get(i + 1)
        .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
    {
        let mut j = i + 1;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        if b.get(j) == Some(&b'\'') {
            return (j + 1, TokKind::Char, src[i..j + 1].to_string());
        }
        return (j, TokKind::Lifetime, src[i..j].to_string());
    }
    // `'('`-style punctuation char literal.
    let mut j = i + 1;
    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
        j += 1;
    }
    (
        (j + 1).min(b.len()),
        TokKind::Char,
        src[i..(j + 1).min(b.len())].to_string(),
    )
}

/// Parses a line comment for the pragma syntax
/// `// slicer-lint: allow(<rule>) — <reason>` (any dash style, or none),
/// and for the taint-source marker `// slicer-lint: secret`.
fn scan_pragma(comment: &str, line: u32, out: &mut Vec<Pragma>, secrets: &mut Vec<u32>) {
    let Some(pos) = comment.find("slicer-lint:") else {
        return;
    };
    let rest = comment[pos + "slicer-lint:".len()..].trim_start();
    if rest == "secret" || rest.starts_with("secret ") || rest.starts_with("secret —") {
        secrets.push(line);
        return;
    }
    let Some(inner) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(close) = inner.find(')') else {
        // Malformed pragma: record with an empty rule so the engine can
        // report it instead of silently ignoring it.
        out.push(Pragma {
            line,
            rule: String::new(),
            reason: String::new(),
        });
        return;
    };
    let rule = inner[..close].trim().to_string();
    let reason = inner[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim()
        .to_string();
    out.push(Pragma { line, rule, reason });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
            // x.unwrap()
            /* also .unwrap() /* nested */ still comment */
            let s = "not.unwrap()"; let r = r#"raw "quoted" .unwrap()"#;
            let b = b"bytes.unwrap()";
        "##;
        let toks = texts(src);
        assert!(!toks.iter().any(|t| t == "unwrap"), "{toks:?}");
        assert_eq!(toks.iter().filter(|t| *t == "let").count(), 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn multi_char_operators_stay_whole() {
        let toks = texts("a == b != c :: d -> e => f ..= g");
        for op in ["==", "!=", "::", "->", "=>", "..="] {
            assert!(toks.iter().any(|t| t == op), "missing {op}");
        }
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb";
        let lexed = lex(src);
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.text == "b")
            .expect("token b");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn pragma_parses_rule_and_reason() {
        let lexed = lex("x(); // slicer-lint: allow(panic.unwrap) — checked by caller\n");
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].rule, "panic.unwrap");
        assert_eq!(lexed.pragmas[0].reason, "checked by caller");
        assert_eq!(lexed.pragmas[0].line, 1);
    }

    #[test]
    fn pragma_without_reason_is_captured_as_empty() {
        let lexed = lex("// slicer-lint: allow(det.wall_clock)\n");
        assert_eq!(lexed.pragmas.len(), 1);
        assert!(lexed.pragmas[0].reason.is_empty());
    }

    #[test]
    fn secret_annotation_records_its_line() {
        let lexed = lex("let a = 1;\n// slicer-lint: secret — PRF key seed\nlet k = seed();\n");
        assert_eq!(lexed.secret_lines, vec![2]);
        assert!(lexed.pragmas.is_empty());
        // Bare form, no reason.
        assert_eq!(lex("// slicer-lint: secret\n").secret_lines, vec![1]);
    }

    #[test]
    fn raw_idents_lex_as_idents() {
        let lexed = lex("let r#type = 1;");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.contains("type")));
    }
}
