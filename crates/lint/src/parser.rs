//! A lightweight item parser on top of the lexer: extracts function
//! definitions (name, parameters with their type tokens, body token slice)
//! and secret-annotation bindings from one source file.
//!
//! Like the lexer this is deliberately not a full Rust grammar. It only
//! needs enough structure for the interprocedural taint analysis: which
//! functions exist, what their parameters are named and typed, and what
//! tokens their bodies contain. Test items (`#[test]`, `#[cfg(test)]`) are
//! skipped wholesale, mirroring the token-rule engine.

use crate::lexer::{lex, Pragma, Tok, TokKind};
use crate::rules::{is_test_attr, skip_item};

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for receivers; `_` patterns keep the last
    /// identifier of the pattern).
    pub name: String,
    /// The parameter's type tokens, joined with spaces (empty for `self`).
    pub ty: String,
}

/// One parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Body tokens (between the outermost braces, exclusive).
    pub body: Vec<Tok>,
}

/// A parsed source file: its functions plus the file-scoped taint inputs.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate name (`core` for `crates/core/src/..`, empty for the root).
    pub krate: String,
    /// Non-test function definitions in source order.
    pub fns: Vec<FnDef>,
    /// Identifiers declared on `// slicer-lint: secret` lines — file-scoped
    /// taint sources (fields and `let` bindings alike).
    pub secret_names: Vec<String>,
    /// Suppression pragmas, forwarded for taint-finding suppression.
    pub pragmas: Vec<Pragma>,
}

/// Crate name of a workspace-relative path (`""` when not under `crates/`).
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Parses one file into its function definitions and taint inputs.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut out = ParsedFile {
        path: path.to_string(),
        krate: crate_of(path).to_string(),
        secret_names: secret_names(toks, &lexed.secret_lines),
        pragmas: lexed.pragmas,
        ..ParsedFile::default()
    };

    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && is_test_attr(toks, i) {
            i = skip_item(toks, i);
            continue;
        }
        if toks[i].text == "fn" && toks[i].kind == TokKind::Ident {
            if let Some((def, next)) = parse_fn(toks, i) {
                out.fns.push(def);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses a `fn` item starting at index `i` (the `fn` keyword). Returns the
/// definition and the index just past its body. `None` for bodyless
/// declarations (trait methods) or unparseable shapes.
fn parse_fn(toks: &[Tok], i: usize) -> Option<(FnDef, usize)> {
    let name_tok = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident)?;
    let name = name_tok.text.clone();
    let line = toks[i].line;
    let mut j = i + 2;

    // Skip a generic parameter list `<..>` (angle-depth tracked; `<<`/`>>`
    // never appear in generics position in this workspace's code).
    if toks.get(j).is_some_and(|t| t.text == "<") {
        let mut depth = 0isize;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "->" | "=>" => {}
                _ => {}
            }
            j += 1;
        }
    }

    if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let (params, after_params) = parse_params(toks, j);
    j = after_params;

    // Scan past return type / where clause to the body `{`, or bail at `;`.
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            Some("{") => break,
            Some(";") | None => return None,
            _ => j += 1,
        }
    }

    // Collect the body to the matching `}`.
    let body_start = j + 1;
    let mut depth = 1usize;
    j += 1;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let body = toks[body_start..j.min(toks.len())].to_vec();
    Some((
        FnDef {
            name,
            line,
            params,
            body,
        },
        j + 1,
    ))
}

/// Parses the parameter list starting at the `(` at index `open`. Returns
/// the parameters and the index just past the closing `)`.
fn parse_params(toks: &[Tok], open: usize) -> (Vec<Param>, usize) {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut current: Vec<&Tok> = Vec::new();
    let mut j = open;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "(" | "[" | "{" => {
                depth += 1;
                if depth > 1 {
                    current.push(t);
                }
            }
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if !current.is_empty() {
                        params.push(param_of(&current));
                    }
                    return (params, j + 1);
                }
                current.push(t);
            }
            "," if depth == 1 => {
                if !current.is_empty() {
                    params.push(param_of(&current));
                }
                current.clear();
            }
            _ if depth >= 1 => current.push(t),
            _ => {}
        }
        j += 1;
    }
    (params, j)
}

/// Builds a [`Param`] from the tokens of one parameter: the pattern is
/// everything before the top-level `:`, the type everything after.
fn param_of(toks: &[&Tok]) -> Param {
    let colon = toks.iter().position(|t| t.text == ":");
    let (pat, ty) = match colon {
        Some(c) => (&toks[..c], &toks[c + 1..]),
        // `self` / `&mut self` receivers carry no `:`.
        None => (toks, &toks[..0]),
    };
    let name = pat
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref"))
        .map_or_else(|| "_".to_string(), |t| t.text.clone());
    let ty = ty
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    Param { name, ty }
}

/// Resolves each `// slicer-lint: secret` annotation line to the binding it
/// marks: the first identifier on that line or the next that is followed by
/// `:` or `=` (covers `let name =`, struct fields `name: Ty`, and
/// parameters `name: Ty` on their own line).
fn secret_names(toks: &[Tok], secret_lines: &[u32]) -> Vec<String> {
    let mut names = Vec::new();
    for &line in secret_lines {
        let declared = toks.iter().enumerate().find(|(idx, t)| {
            (t.line == line || t.line == line + 1)
                && t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "let" | "pub" | "mut" | "ref" | "crate")
                && toks
                    .get(idx + 1)
                    .is_some_and(|n| n.text == ":" || n.text == "=")
        });
        if let Some((_, t)) = declared {
            if !names.contains(&t.text) {
                names.push(t.text.clone());
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/core/src/x.rs", src)
    }

    #[test]
    fn extracts_name_params_and_body() {
        let p = parse("fn add(a: u64, b: u64) -> u64 { a + b }\n");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "a");
        assert_eq!(f.params[1].ty, "u64");
        assert!(f.body.iter().any(|t| t.text == "+"));
    }

    #[test]
    fn receiver_and_reference_types_parse() {
        let p = parse("impl S { fn get(&self, key: &Prf) -> u8 { 0 } }");
        let f = &p.fns[0];
        assert_eq!(f.params[0].name, "self");
        assert_eq!(f.params[1].name, "key");
        assert_eq!(f.params[1].ty, "& Prf");
    }

    #[test]
    fn generic_fns_and_nested_bodies_parse() {
        let src = "fn outer<T: Clone>(x: T) -> T { if true { let y = x.clone(); y } else { x } }\nfn after() {}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "outer");
        assert_eq!(p.fns[1].name, "after");
    }

    #[test]
    fn test_items_are_skipped() {
        let src = "#[cfg(test)]\nmod tests { fn helper() {} }\nfn real() {}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn secret_annotations_resolve_to_bindings() {
        let src = "struct K {\n    // slicer-lint: secret — PRF key\n    prf_g: Prf,\n}\nfn f() {\n    // slicer-lint: secret\n    let seed_material = derive();\n}\n";
        let p = parse(src);
        assert_eq!(p.secret_names, vec!["prf_g", "seed_material"]);
    }

    #[test]
    fn bodyless_trait_methods_are_ignored() {
        let p = parse("trait T { fn must(&self) -> u8; }\nfn real() {}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/core/src/owner.rs"), "core");
        assert_eq!(crate_of("src/lib.rs"), "");
    }
}
