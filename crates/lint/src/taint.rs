//! Interprocedural secret-taint analysis (`taint.secret_to_*`).
//!
//! **Sources** — where secret material enters:
//! * bindings marked `// slicer-lint: secret` (file-scoped by name),
//! * parameters typed with the `slicer_crypto` key types
//!   ([`SECRET_TYPES`]),
//! * calls to the built-in secret getters ([`SECRET_GETTERS`]).
//!
//! **Sinks** — where it must never arrive:
//! * telemetry attribute/log/metric calls (`taint.secret_to_log`),
//! * `format!`-family macros, i.e. `Debug`/`Display` surfaces
//!   (`taint.secret_to_debug`),
//! * `slicer_persist` frame writers (`taint.secret_to_persist`),
//! * the daemon wire encoder (`taint.secret_to_wire`),
//! * non-constant-time `==`/`!=` on tainted operands
//!   (`taint.secret_to_ct`).
//!
//! **Sanitizers** discharge taint: hashing, PRF evaluation, SORE/symmetric
//! encryption, trapdoor-permutation operations, modular exponentiation and
//! the snapshot capture path ([`SANITIZERS`]).
//!
//! Taint is tracked per function as a bitmask — bit 63 is *secret*, bit
//! `i` means *flows from parameter `i`* — so one pass both finds concrete
//! leaks and builds a reusable summary (`returns taint from params {..};
//! param j reaches a log sink`). Summaries are computed to fixpoint over
//! the whole workspace call graph (monotone masks, so recursion
//! terminates), then a final emission pass reports each secret-to-sink
//! chain at the sink (or call) site. Sources are only seeded inside the
//! protocol crates ([`TAINT_CRATES`]); bench/test harnesses that handle
//! keys on purpose stay out of scope.

use crate::graph::{FnId, SymbolTable};
use crate::lexer::{Tok, TokKind};
use crate::parser::{FnDef, ParsedFile};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// The taint rule family, in report order.
pub const TAINT_RULES: &[&str] = &[
    "taint.secret_to_log",
    "taint.secret_to_debug",
    "taint.secret_to_persist",
    "taint.secret_to_wire",
    "taint.secret_to_ct",
];

/// Crates where taint sources are seeded. Everything else (bench, workload,
/// testkit, the linter itself) handles key material only as a harness.
pub const TAINT_CRATES: &[&str] = &["crypto", "core", "sore", "trapdoor", "daemon", "persist"];

/// Types whose values are secret by construction (`slicer_crypto` /
/// `slicer_core` key material).
pub const SECRET_TYPES: &[&str] = &["Prf", "SymmetricKey", "KeySet", "TrapdoorKeyPair"];

/// Methods/functions returning secret material regardless of arguments.
pub const SECRET_GETTERS: &[&str] = &["prf_g", "record_key", "trapdoor", "trapdoor_salt"];

/// Calls whose result is sanctioned as public: one-way (hashing, PRF
/// evaluation), semantically public (ciphertexts, public keys), or the
/// audited key-seed-only snapshot path.
pub const SANITIZERS: &[&str] = &[
    "sha256",
    "eval",
    "eval128",
    "derive",
    "keyword_keys",
    "encrypt",
    "decrypt",
    "invert",
    "forward",
    "public",
    "hash_to_prime",
    "powmod",
    "modpow",
    "capture",
];

/// Methods whose result reveals only public structure of a tainted value.
const CLEAN_METHODS: &[&str] = &["len", "is_empty", "bit_len", "remaining"];

/// Telemetry sink methods; only treated as sinks when the first argument
/// is a string literal (the attribute/metric name), which distinguishes
/// `span.attr("k", v)` from unrelated methods sharing a name.
const LOG_SINKS: &[&str] = &["attr", "log", "count", "gauge"];

/// Formatting macros — `Debug`/`Display` surfaces.
const DEBUG_MACROS: &[&str] = &[
    "format", "println", "print", "eprintln", "eprint", "write", "writeln",
];

/// Durable-storage entry points in `slicer_persist`.
const PERSIST_SINKS: &[&str] = &["write_frames", "commit"];

/// Wire-protocol encoder in `crates/daemon`.
const WIRE_SINKS: &[&str] = &["write_message"];

/// Names with more candidates than this are treated as unresolved calls
/// (argument taint still propagates conservatively, but their summaries'
/// sink reports are too ambiguous to attribute).
const AMBIG_LIMIT: usize = 3;

const SECRET_BIT: u64 = 1 << 63;

/// A function's interprocedural summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Return-value taint: [`SECRET_BIT`] and/or parameter-index bits.
    pub ret: u64,
    /// Parameters that (transitively) reach a sink inside this function,
    /// with the sink rule and a human-readable call chain.
    pub sinks: BTreeMap<u32, SinkHit>,
}

/// One parameter-to-sink flow recorded in a [`Summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkHit {
    /// The `taint.*` rule at the chain's end.
    pub rule: &'static str,
    /// `callee -> .. -> sink` description.
    pub chain: String,
}

/// Runs the whole-workspace taint analysis over parsed files and returns
/// findings (pragma suppression applied, deduplicated by site).
pub fn analyze(files: &[ParsedFile]) -> Vec<Finding> {
    let table = SymbolTable::build(files);
    let mut summaries: BTreeMap<FnId, Summary> = BTreeMap::new();

    // Fixpoint: masks and sink maps only grow, so this terminates; the
    // round cap is a backstop for pathological inputs.
    for _round in 0..12 {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let mut ctx = FnCtx::new(files, &table, &summaries, file, false);
                let summary = ctx.analyze_fn(f);
                let id = (fi, gi);
                if summaries.get(&id) != Some(&summary) {
                    summaries.insert(id, summary);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Emission pass.
    let mut findings = Vec::new();
    let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    for file in files {
        let mut file_findings = Vec::new();
        for f in &file.fns {
            let mut ctx = FnCtx::new(files, &table, &summaries, file, true);
            ctx.analyze_fn(f);
            file_findings.extend(ctx.findings);
        }
        suppress(&file.pragmas, &mut file_findings);
        for f in file_findings {
            if seen.insert((f.file.clone(), f.line, f.rule)) {
                findings.push(f);
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Debug aid: prints every function whose summary returns secret taint or
/// records a parameter-to-sink flow. Not part of the lint output.
pub fn debug_dump(files: &[ParsedFile]) {
    let table = SymbolTable::build(files);
    let mut summaries: BTreeMap<FnId, Summary> = BTreeMap::new();
    for _round in 0..12 {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let mut ctx = FnCtx::new(files, &table, &summaries, file, false);
                let summary = ctx.analyze_fn(f);
                if summaries.get(&(fi, gi)) != Some(&summary) {
                    summaries.insert((fi, gi), summary);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (&(fi, gi), s) in &summaries {
        let file = &files[fi];
        let f = &file.fns[gi];
        if s.ret & SECRET_BIT != 0 {
            println!("RET-SECRET {}:{} {}", file.path, f.line, f.name);
        }
        for (pi, hit) in &s.sinks {
            println!(
                "PARAM-SINK {}:{} {} param#{pi}({}) {} via {}",
                file.path,
                f.line,
                f.name,
                f.params.get(*pi as usize).map_or("?", |p| p.name.as_str()),
                hit.rule,
                hit.chain
            );
        }
    }
}

/// Applies valid `allow(..)` pragmas (own line + next) to taint findings.
fn suppress(pragmas: &[crate::lexer::Pragma], findings: &mut Vec<Finding>) {
    for p in pragmas {
        if !p.reason.is_empty() && TAINT_RULES.contains(&p.rule.as_str()) {
            findings.retain(|f| f.rule != p.rule || (f.line != p.line && f.line != p.line + 1));
        }
    }
}

/// Per-function analysis context: a recursive token walker that computes
/// expression taint masks, tracks variable bindings, applies summaries at
/// call sites and records sink hits.
struct FnCtx<'a> {
    files: &'a [ParsedFile],
    table: &'a SymbolTable,
    summaries: &'a BTreeMap<FnId, Summary>,
    file: &'a ParsedFile,
    /// Sources are only seeded in protocol crates.
    seed_sources: bool,
    emit: bool,
    vars: BTreeMap<String, u64>,
    param_sinks: BTreeMap<u32, SinkHit>,
    ret_mask: u64,
    findings: Vec<Finding>,
}

impl<'a> FnCtx<'a> {
    fn new(
        files: &'a [ParsedFile],
        table: &'a SymbolTable,
        summaries: &'a BTreeMap<FnId, Summary>,
        file: &'a ParsedFile,
        emit: bool,
    ) -> Self {
        FnCtx {
            files,
            table,
            summaries,
            file,
            seed_sources: TAINT_CRATES.contains(&file.krate.as_str()),
            emit,
            vars: BTreeMap::new(),
            param_sinks: BTreeMap::new(),
            ret_mask: 0,
            findings: Vec::new(),
        }
    }

    fn analyze_fn(&mut self, f: &FnDef) -> Summary {
        for (i, p) in f.params.iter().enumerate().take(62) {
            let mut mask = 1u64 << i;
            let secret_ty = SECRET_TYPES.iter().any(|t| type_mentions(&p.ty, t));
            if self.seed_sources && (secret_ty || self.file.secret_names.contains(&p.name)) {
                mask |= SECRET_BIT;
            }
            self.vars.insert(p.name.clone(), mask);
        }
        // Two passes so a name used before a later (re)binding in loop
        // bodies still converges; masks only grow, so this is monotone.
        // Return taint comes from `return` statements (recorded inside
        // `walk`) and the tail expression only — NOT the whole-body union,
        // which would claim every function touching a secret returns one.
        for _ in 0..2 {
            self.walk(&f.body, 0, f.body.len());
            self.ret_mask |= self.tail_expr_mask(&f.body);
        }
        Summary {
            ret: self.ret_mask,
            sinks: self.param_sinks.clone(),
        }
    }

    /// Mask of the body's tail expression (tokens after the last top-level
    /// `;` or `}`), i.e. the implicit return value.
    fn tail_expr_mask(&mut self, body: &[Tok]) -> u64 {
        let mut depth = 0usize;
        let mut tail_start = 0usize;
        for (i, t) in body.iter().enumerate() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        tail_start = i + 1;
                    }
                }
                ";" if depth == 0 => tail_start = i + 1,
                _ => {}
            }
        }
        if tail_start < body.len() {
            self.walk(body, tail_start, body.len())
        } else {
            0
        }
    }

    /// Walks `toks[lo..hi]`, returning the union taint mask of the region.
    /// Handles `let`/assignments, call dispatch (sanitizers, getters,
    /// sinks, summaries), formatting macros and `==`/`!=` sinks.
    fn walk(&mut self, toks: &[Tok], lo: usize, hi: usize) -> u64 {
        let mut mask = 0u64;
        let mut i = lo;
        while i < hi {
            let t = &toks[i];
            let next = toks.get(i + 1).filter(|n| n.line > 0);
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "let") => {
                    i = self.handle_let(toks, i, hi);
                    continue;
                }
                (TokKind::Ident, "return") => {
                    let end = stmt_end(toks, i + 1, hi);
                    let m = self.walk(toks, i + 1, end);
                    self.ret_mask |= m;
                    mask |= m;
                    i = end;
                    continue;
                }
                (TokKind::Ident, name) if next.is_some_and(|n| n.text == "(") => {
                    let (m, after) = self.handle_call(toks, i, hi, name);
                    mask |= m;
                    i = after;
                    continue;
                }
                (TokKind::Ident, name)
                    if next.is_some_and(|n| n.text == "!")
                        && DEBUG_MACROS.contains(&name)
                        && toks
                            .get(i + 2)
                            .is_some_and(|d| matches!(d.text.as_str(), "(" | "[" | "{")) =>
                {
                    let close = matching(toks, i + 2, hi);
                    let inner = self.walk(toks, i + 3, close);
                    self.hit_sink(
                        inner,
                        "taint.secret_to_debug",
                        t.line,
                        &format!("`{name}!(..)` formatting"),
                    );
                    mask |= inner;
                    i = close + 1;
                    continue;
                }
                (TokKind::Ident, name) => {
                    // Re-assignment `name = ..` / `name |= ..` etc.
                    if let Some(op) = next.map(|n| n.text.as_str()) {
                        if op == "="
                            || (op.len() == 2
                                && op.ends_with('=')
                                && !matches!(op, "==" | "!=" | "<=" | ">="))
                        {
                            let end = stmt_end(toks, i + 2, hi);
                            let m = self.walk(toks, i + 2, end);
                            *self.vars.entry(name.to_string()).or_insert(0) |= m;
                            mask |= m;
                            i = end;
                            continue;
                        }
                    }
                    mask |= self.ident_mask(toks, i, hi);
                }
                (TokKind::Punct, "==") | (TokKind::Punct, "!=") => {
                    let m = self.window_mask(toks, i, lo, hi);
                    self.hit_sink(
                        m,
                        "taint.secret_to_ct",
                        t.line,
                        &format!("non-constant-time `{}`", t.text),
                    );
                }
                _ => {}
            }
            i += 1;
        }
        mask
    }

    /// `let <pattern> = <rhs>;` — taints every pattern identifier with the
    /// right-hand side's mask. Covers plain, tuple and `if let` patterns.
    fn handle_let(&mut self, toks: &[Tok], let_idx: usize, hi: usize) -> usize {
        let mut targets = Vec::new();
        let mut j = let_idx + 1;
        while j < hi {
            match (toks[j].kind, toks[j].text.as_str()) {
                (_, "=") => break,
                (_, ";") | (_, "{") => {
                    // `let else` bodies / malformed: no initializer.
                    return j;
                }
                (TokKind::Ident, name) if !matches!(name, "mut" | "ref") => {
                    // Skip constructor names in patterns (`Some`, `Ok`) —
                    // they are immediately followed by `(` or `::`.
                    let ctor = toks
                        .get(j + 1)
                        .is_some_and(|n| n.text == "(" || n.text == "::");
                    if !ctor {
                        targets.push(name.to_string());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= hi {
            return hi;
        }
        let end = stmt_end(toks, j + 1, hi);
        let m = self.walk(toks, j + 1, end);
        for name in targets {
            *self.vars.entry(name).or_insert(0) |= m;
        }
        end
    }

    /// Is the value produced just before `idx` immediately fed into a
    /// sanitizing or structure-only method (`.sha256(..)`, `.public(..)`,
    /// `.len()`)? If so the producer contributes nothing: the sanctioned
    /// call consumes it. This is what makes `ks.trapdoor().public()` clean
    /// in a linear left-to-right walk.
    fn sanitized_next(&self, toks: &[Tok], idx: usize, hi: usize) -> bool {
        idx < hi
            && toks.get(idx).is_some_and(|t| t.text == ".")
            && toks.get(idx + 1).is_some_and(|n| {
                n.kind == TokKind::Ident
                    && (SANITIZERS.contains(&n.text.as_str())
                        || CLEAN_METHODS.contains(&n.text.as_str()))
            })
            && toks.get(idx + 2).is_some_and(|n| n.text == "(")
    }

    /// Dispatches a call `name( .. )` at token `i`; returns the call's
    /// result mask and the index just past the closing `)`.
    fn handle_call(&mut self, toks: &[Tok], i: usize, hi: usize, name: &str) -> (u64, usize) {
        let open = i + 1;
        let close = matching(toks, open, hi);
        let after = close + 1;
        let line = toks[i].line;

        if SANITIZERS.contains(&name) {
            return (0, after);
        }
        let cleaned = self.sanitized_next(toks, after, hi);
        if self.seed_sources && SECRET_GETTERS.contains(&name) {
            return (if cleaned { 0 } else { SECRET_BIT }, after);
        }

        let args = arg_ranges(toks, open, close);
        let first_arg_is_str = args
            .first()
            .and_then(|&(lo, _)| toks.get(lo))
            .is_some_and(|t| t.kind == TokKind::Str);
        let is_method = i >= 1 && toks[i - 1].text == ".";

        if is_method && LOG_SINKS.contains(&name) && first_arg_is_str {
            let m = self.args_mask(toks, &args);
            self.hit_sink(
                m,
                "taint.secret_to_log",
                line,
                &format!("telemetry `.{name}(..)`"),
            );
            return (0, after);
        }
        if PERSIST_SINKS.contains(&name) {
            let m = self.args_mask(toks, &args);
            self.hit_sink(
                m,
                "taint.secret_to_persist",
                line,
                &format!("persist `{name}(..)`"),
            );
            return (0, after);
        }
        if WIRE_SINKS.contains(&name) {
            let m = self.args_mask(toks, &args);
            self.hit_sink(
                m,
                "taint.secret_to_wire",
                line,
                &format!("wire `{name}(..)`"),
            );
            return (0, after);
        }

        let candidates = self.table.resolve(name);
        let arg_masks: Vec<u64> = args.iter().map(|&(lo, h)| self.walk(toks, lo, h)).collect();
        if candidates.is_empty() || candidates.len() > AMBIG_LIMIT {
            // Unresolved (std/ambiguous): propagate argument taint through.
            let m = arg_masks.iter().fold(0, |a, v| a | v);
            return (if cleaned { 0 } else { m }, after);
        }

        // Receiver of a method call maps to a `self` first parameter.
        let recv_mask = if is_method && i >= 2 && toks[i - 2].kind == TokKind::Ident {
            self.ident_mask(toks, i - 2, hi)
        } else {
            0
        };

        let mut out = 0u64;
        for &(fi, gi) in candidates {
            let callee = &self.files[fi].fns[gi];
            let has_self = callee.params.first().is_some_and(|p| p.name == "self");
            let mask_of_param = |pi: usize| -> u64 {
                if has_self {
                    if pi == 0 {
                        recv_mask
                    } else {
                        arg_masks.get(pi - 1).copied().unwrap_or(0)
                    }
                } else {
                    arg_masks.get(pi).copied().unwrap_or(0)
                }
            };
            let Some(summary) = self.summaries.get(&(fi, gi)) else {
                out |= arg_masks.iter().fold(0, |a, m| a | m);
                continue;
            };
            if summary.ret & SECRET_BIT != 0 && self.seed_sources {
                out |= SECRET_BIT;
            }
            for pi in 0..callee.params.len().min(62) {
                if summary.ret & (1 << pi) != 0 {
                    out |= mask_of_param(pi);
                }
            }
            for (&pi, hit) in &summary.sinks {
                let m = mask_of_param(pi as usize);
                if m == 0 {
                    continue;
                }
                let chain = format!("`{name}` -> {}", hit.chain);
                if self.emit && m & SECRET_BIT != 0 {
                    self.findings.push(Finding {
                        file: self.file.path.clone(),
                        line,
                        rule: hit.rule,
                        detail: format!("secret argument flows into {chain}"),
                    });
                }
                for b in param_bits(m) {
                    self.param_sinks.entry(b).or_insert_with(|| SinkHit {
                        rule: hit.rule,
                        chain: chain.clone(),
                    });
                }
            }
        }
        (if cleaned { 0 } else { out }, after)
    }

    /// Union mask over explicit argument ranges.
    fn args_mask(&mut self, toks: &[Tok], args: &[(usize, usize)]) -> u64 {
        args.iter()
            .fold(0, |a, &(lo, hi)| a | self.walk(toks, lo, hi))
    }

    /// Mask of a bare identifier occurrence, with the clean-method
    /// carve-out (`key.len()` reveals only public structure).
    fn ident_mask(&self, toks: &[Tok], i: usize, hi: usize) -> u64 {
        let name = toks[i].text.as_str();
        let mut m = self.vars.get(name).copied().unwrap_or(0);
        if self.seed_sources && self.file.secret_names.iter().any(|s| s == name) {
            m |= SECRET_BIT;
        }
        if m != 0 && self.sanitized_next(toks, i + 1, hi) {
            return 0;
        }
        m
    }

    /// Union mask of identifiers near a comparison operator, bounded by
    /// statement delimiters.
    fn window_mask(&self, toks: &[Tok], op: usize, lo: usize, hi: usize) -> u64 {
        let mut m = 0u64;
        let stop = |t: &Tok| matches!(t.text.as_str(), ";" | "{" | "}" | ",");
        let from = op.saturating_sub(6).max(lo);
        for j in (from..op).rev() {
            if stop(&toks[j]) {
                break;
            }
            if toks[j].kind == TokKind::Ident {
                m |= self.ident_mask(toks, j, hi);
            }
        }
        for j in op + 1..(op + 7).min(hi) {
            if stop(&toks[j]) {
                break;
            }
            if toks[j].kind == TokKind::Ident {
                m |= self.ident_mask(toks, j, hi);
            }
        }
        m
    }

    /// Records a sink hit: a finding when secret-tainted (emission pass),
    /// and a summary entry for every contributing parameter.
    ///
    /// The ct rule is deliberately intraprocedural: a `==` deep inside a
    /// callee almost always compares derived public structure (lengths,
    /// status codes), so only comparisons adjacent to the secret value
    /// itself are reported — no parameter summary is recorded for it.
    fn hit_sink(&mut self, mask: u64, rule: &'static str, line: u32, desc: &str) {
        if mask == 0 {
            return;
        }
        if self.emit && mask & SECRET_BIT != 0 {
            self.findings.push(Finding {
                file: self.file.path.clone(),
                line,
                rule,
                detail: format!("secret material reaches {desc}"),
            });
        }
        if rule == "taint.secret_to_ct" {
            return;
        }
        for b in param_bits(mask) {
            self.param_sinks.entry(b).or_insert_with(|| SinkHit {
                rule,
                chain: desc.to_string(),
            });
        }
    }
}

/// Parameter-index bits set in a mask.
fn param_bits(mask: u64) -> impl Iterator<Item = u32> {
    (0..62).filter(move |b| mask & (1 << b) != 0)
}

/// Does a space-joined type string mention `name` as a whole token?
fn type_mentions(ty: &str, name: &str) -> bool {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|seg| seg == name)
}

/// Index of the delimiter matching the opener at `open` (any bracket
/// kind), bounded by `hi`.
fn matching(toks: &[Tok], open: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < hi {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi.saturating_sub(1)
}

/// Top-level comma-separated argument ranges between `open` and `close`
/// (exclusive).
fn arg_ranges(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = open + 1;
    for j in open + 1..close {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            "," if depth == 0 => {
                if start < j {
                    out.push((start, j));
                }
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

/// End of the statement starting at `from`: the `;` at the current brace
/// depth, or `hi`.
fn stmt_end(toks: &[Tok], from: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut j = from;
    while j < hi {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn scan(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        analyze(&parsed)
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn secret_param_to_log_sink() {
        let src = "fn f(span: &mut Span, key: &Prf) { span.attr(\"k\", key); }";
        let found = scan(&[("crates/core/src/x.rs", src)]);
        assert_eq!(rules(&found), vec!["taint.secret_to_log"]);
    }

    #[test]
    fn sanitizer_discharges() {
        let src = "fn f(span: &mut Span, key: &Prf) { span.attr(\"k\", sha256(key)); }";
        assert!(scan(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn annotation_seeds_and_debug_sinks() {
        let src = "fn f() {\n    // slicer-lint: secret\n    let material = load();\n    let s = format!(\"{:?}\", material);\n}";
        let found = scan(&[("crates/core/src/x.rs", src)]);
        assert_eq!(rules(&found), vec!["taint.secret_to_debug"]);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn interprocedural_chain_reported_at_call_site() {
        let helper = "fn helper(span: &mut Span, x: &[u8]) { span.attr(\"x\", x); }";
        let caller = "fn top(span: &mut Span, key: &KeySet) { helper(span, key); }";
        let found = scan(&[
            ("crates/core/src/a.rs", caller),
            ("crates/core/src/b.rs", helper),
        ]);
        assert_eq!(rules(&found), vec!["taint.secret_to_log"]);
        assert_eq!(found[0].file, "crates/core/src/a.rs");
        assert!(found[0].detail.contains("helper"), "{}", found[0].detail);
    }

    #[test]
    fn getter_to_ct_comparison() {
        let src = "fn check(ks: &KeySet, other: &[u8]) -> bool {\n    let material = ks.record_key();\n    material == other\n}";
        let found = scan(&[("crates/core/src/x.rs", src)]);
        assert_eq!(rules(&found), vec!["taint.secret_to_ct"]);
    }

    #[test]
    fn sources_not_seeded_outside_taint_crates() {
        let src = "fn f(span: &mut Span, key: &Prf) { span.attr(\"k\", key); }";
        assert!(scan(&[("crates/workload/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn clean_methods_reveal_structure_only() {
        let src = "fn f(span: &mut Span, key: &KeySet) { span.attr(\"n\", key.len()); }";
        assert!(scan(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn pragma_suppresses_taint_finding() {
        let src = "fn f(span: &mut Span, key: &Prf) {\n    // slicer-lint: allow(taint.secret_to_log) — redacted upstream\n    span.attr(\"k\", key);\n}";
        assert!(scan(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn recursion_terminates_with_fixpoint() {
        let src = "fn ping(key: &Prf, n: u8) -> u8 { if n == 0 { 0 } else { pong(key, n) } }\nfn pong(key: &Prf, n: u8) -> u8 { ping(key, n) }";
        // No sink: just must not hang or report.
        assert!(scan(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn persist_and_wire_sinks_fire() {
        let p = "fn f(w: &mut W, key: &KeySet) { write_frames(w, key); }";
        let found = scan(&[("crates/persist/src/x.rs", p)]);
        assert_eq!(rules(&found), vec!["taint.secret_to_persist"]);
        let w = "fn f(s: &mut S, key: &KeySet) { write_message(s, key); }";
        let found = scan(&[("crates/daemon/src/x.rs", w)]);
        assert_eq!(rules(&found), vec!["taint.secret_to_wire"]);
    }
}
