//! The grandfathering baseline and its strict ratchet.
//!
//! `lint-baseline.txt` records, per `(rule, file)`, how many violations are
//! tolerated because they predate the linter. The ratchet only ever goes
//! down: a check fails as soon as any `(rule, file)` count *grows* (or a
//! new file/rule pair appears), while `--update-baseline` rewrites the file
//! from the current scan so fixed sites can never silently come back.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Per-`(file, rule)` tolerated counts.
pub type Counts = BTreeMap<(String, String), usize>;

/// One regression against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Offending file.
    pub file: String,
    /// Offending rule.
    pub rule: String,
    /// Count the baseline tolerates (0 when the pair is new).
    pub allowed: usize,
    /// Count found now.
    pub found: usize,
}

/// Result of comparing a scan against the baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Pairs whose count grew (check failure).
    pub grown: Vec<Regression>,
    /// Pairs whose count shrank (stale baseline; run `--update-baseline`).
    pub shrunk: Vec<Regression>,
}

impl Ratchet {
    /// True when nothing grew.
    pub fn passed(&self) -> bool {
        self.grown.is_empty()
    }
}

/// Compares current counts against baseline counts.
pub fn ratchet(current: &Counts, baseline: &Counts) -> Ratchet {
    let mut out = Ratchet::default();
    for ((file, rule), &found) in current {
        let allowed = baseline
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if found > allowed {
            out.grown.push(Regression {
                file: file.clone(),
                rule: rule.clone(),
                allowed,
                found,
            });
        } else if found < allowed {
            out.shrunk.push(Regression {
                file: file.clone(),
                rule: rule.clone(),
                allowed,
                found,
            });
        }
    }
    for ((file, rule), &allowed) in baseline {
        if !current.contains_key(&(file.clone(), rule.clone())) && allowed > 0 {
            out.shrunk.push(Regression {
                file: file.clone(),
                rule: rule.clone(),
                allowed,
                found: 0,
            });
        }
    }
    out
}

/// Parses the baseline file format: `<count>\t<rule>\t<file>` per line,
/// `#` comments and blank lines ignored.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (count, rule, file) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(c), Some(r), Some(f), None) => (c, r, f),
            _ => {
                return Err(format!(
                    "baseline line {}: expected 3 tab-separated fields",
                    idx + 1
                ))
            }
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
        counts.insert((file.to_string(), rule.to_string()), count);
    }
    Ok(counts)
}

/// Renders findings into the committed baseline format, with a summary of
/// per-family totals in the header.
pub fn render(findings: &[Finding]) -> String {
    let counts = crate::rules::group_counts(findings);
    let mut family_totals: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        let family = f.rule.split('.').next().unwrap_or(f.rule);
        *family_totals.entry(family).or_insert(0) += 1;
    }
    let mut out = String::new();
    out.push_str("# slicer-lint baseline — grandfathered violations, per (rule, file).\n");
    out.push_str("# Regenerate with: cargo run -p slicer-lint -- --update-baseline\n");
    out.push_str("# Ratchet: counts may only shrink. Growth anywhere fails --check.\n");
    for (family, total) in &family_totals {
        out.push_str(&format!("# total {family}: {total} site(s)\n"));
    }
    for ((file, rule), count) in &counts {
        out.push_str(&format!("{count}\t{rule}\t{file}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, usize)]) -> Counts {
        entries
            .iter()
            .map(|(f, r, c)| ((f.to_string(), r.to_string()), *c))
            .collect()
    }

    #[test]
    fn growth_fails_shrink_passes() {
        let base = counts(&[("a.rs", "panic.unwrap", 2)]);
        let grown = ratchet(&counts(&[("a.rs", "panic.unwrap", 3)]), &base);
        assert!(!grown.passed());
        let shrunk = ratchet(&counts(&[("a.rs", "panic.unwrap", 1)]), &base);
        assert!(shrunk.passed());
        assert_eq!(shrunk.shrunk.len(), 1);
        let gone = ratchet(&Counts::new(), &base);
        assert!(gone.passed());
        assert_eq!(gone.shrunk[0].found, 0);
    }

    #[test]
    fn new_pair_counts_as_growth() {
        let r = ratchet(&counts(&[("b.rs", "det.wall_clock", 1)]), &Counts::new());
        assert!(!r.passed());
        assert_eq!(r.grown[0].allowed, 0);
    }

    #[test]
    fn parse_render_roundtrip() {
        let findings = vec![
            Finding {
                file: "crates/chain/src/x.rs".into(),
                line: 3,
                rule: "panic.unwrap",
                detail: ".unwrap()".into(),
            },
            Finding {
                file: "crates/chain/src/x.rs".into(),
                line: 9,
                rule: "panic.unwrap",
                detail: ".unwrap()".into(),
            },
        ];
        let text = render(&findings);
        assert!(text.contains("# total panic: 2 site(s)"));
        let parsed = parse(&text).expect("roundtrip");
        assert_eq!(
            parsed.get(&("crates/chain/src/x.rs".into(), "panic.unwrap".into())),
            Some(&2)
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("nonsense").is_err());
        assert!(parse("x\tpanic.unwrap\ta.rs").is_err());
    }
}
