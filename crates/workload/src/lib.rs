//! # slicer-workload
//!
//! Seeded dataset and query generators for the evaluation (Section VII).
//!
//! The paper evaluates on "randomly simulated key-value records" with 8-,
//! 16- and 24-bit values over 10K–160K records. This crate reproduces that
//! setup deterministically (same seed → same dataset) and adds two skewed
//! distributions for robustness experiments.
//!
//! The [`throughput`] module turns the generators into a sustained-load
//! benchmark: N seeded searchers with a Zipf query mix, runnable against
//! an in-process [`slicer_core::SlicerSystem`] or a live `slicerd`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod throughput;

pub use throughput::{
    ingest_into_daemon, run_against_daemon, run_in_process, ThroughputError, ThroughputReport,
    ThroughputSpec,
};

use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};
use slicer_crypto::Rng;

/// Value distribution of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform over the full `bits`-bit domain (the paper's setting).
    Uniform,
    /// Zipf-like skew with the given exponent (popular values dominate).
    Zipf {
        /// Skew exponent (1.0 = classic Zipf).
        exponent: f64,
    },
    /// Values clustered in a narrow band around the domain midpoint.
    Clustered {
        /// Band half-width as a fraction of the domain (0 < f ≤ 0.5).
        spread: f64,
    },
}

impl Encode for Distribution {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Distribution::Uniform => 0u32.encode(out),
            Distribution::Zipf { exponent } => {
                1u32.encode(out);
                exponent.encode(out);
            }
            Distribution::Clustered { spread } => {
                2u32.encode(out);
                spread.encode(out);
            }
        }
    }
}

impl Decode for Distribution {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(reader)? {
            0 => Ok(Distribution::Uniform),
            1 => Ok(Distribution::Zipf {
                exponent: f64::decode(reader)?,
            }),
            2 => Ok(Distribution::Clustered {
                spread: f64::decode(reader)?,
            }),
            v => Err(CodecError::msg(format!("invalid Distribution variant {v}"))),
        }
    }
}

/// Descriptor of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Number of records.
    pub records: usize,
    /// Value bit width (8 / 16 / 24 in the paper).
    pub bits: u8,
    /// Value distribution.
    pub distribution: Distribution,
    /// RNG seed.
    pub seed: u64,
}

slicer_crypto::impl_codec!(DatasetSpec {
    records,
    bits,
    distribution,
    seed,
});

impl DatasetSpec {
    /// The paper's uniform setting.
    pub fn uniform(records: usize, bits: u8, seed: u64) -> Self {
        DatasetSpec {
            records,
            bits,
            distribution: Distribution::Uniform,
            seed,
        }
    }

    /// Generates `(record id, value)` pairs; record IDs are sequential
    /// 16-byte identifiers (`[0u64, i]`), values follow the distribution.
    pub fn generate(&self) -> Vec<([u8; 16], u64)> {
        let mut rng = splitmix_stream(self.seed);
        let max = if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        (0..self.records)
            .map(|i| {
                let mut id = [0u8; 16];
                id[8..].copy_from_slice(&(i as u64).to_be_bytes());
                let v = match self.distribution {
                    Distribution::Uniform => rng.next_u64() & max,
                    Distribution::Zipf { exponent } => zipf_sample(&mut rng, max, exponent),
                    Distribution::Clustered { spread } => clustered_sample(&mut rng, max, spread),
                };
                (id, v)
            })
            .collect()
    }
}

/// Samples equality/order query values for a dataset: draws `count` values
/// that *exist* in the data (so equality queries return hits, as when the
/// paper "selects random numbers to execute the protocol").
pub fn sample_query_values(data: &[([u8; 16], u64)], count: usize, seed: u64) -> Vec<u64> {
    let mut rng = splitmix_stream(seed);
    (0..count)
        .map(|_| data[(rng.next_u64() % data.len() as u64) as usize].1)
        .collect()
}

/// A tiny deterministic RNG (SplitMix64 stream) implementing
/// [`slicer_crypto::Rng`]; deliberately minimal so dataset generation has
/// no cross-version drift.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

/// Creates a [`SplitMix64`] stream from a seed.
pub fn splitmix_stream(seed: u64) -> SplitMix64 {
    SplitMix64 { state: seed }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn zipf_sample<R: Rng>(rng: &mut R, max: u64, exponent: f64) -> u64 {
    // Inverse-power transform over a bounded rank space.
    let u = (rng.next_u64() as f64 + 1.0) / (u64::MAX as f64 + 2.0);
    let rank = u.powf(-1.0 / exponent) - 1.0;
    (rank as u64).min(max)
}

fn clustered_sample<R: Rng>(rng: &mut R, max: u64, spread: f64) -> u64 {
    let mid = max / 2;
    let band = ((max as f64) * spread.clamp(1e-9, 0.5)) as u64;
    let lo = mid.saturating_sub(band);
    let width = (2 * band + 1).max(1);
    lo + rng.next_u64() % width
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let spec = DatasetSpec::uniform(100, 16, 7);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn values_respect_bit_width() {
        for bits in [8u8, 16, 24] {
            let spec = DatasetSpec::uniform(500, bits, 1);
            let max = (1u64 << bits) - 1;
            assert!(spec.generate().iter().all(|(_, v)| *v <= max));
        }
    }

    #[test]
    fn uniform_covers_the_domain() {
        let spec = DatasetSpec::uniform(2_000, 8, 2);
        let data = spec.generate();
        let distinct: std::collections::HashSet<u64> = data.iter().map(|(_, v)| *v).collect();
        // 2000 uniform draws over 256 values: expect near-full coverage.
        assert!(distinct.len() > 240, "only {} distinct", distinct.len());
    }

    #[test]
    fn zipf_is_skewed() {
        let spec = DatasetSpec {
            records: 2_000,
            bits: 16,
            distribution: Distribution::Zipf { exponent: 1.2 },
            seed: 3,
        };
        let data = spec.generate();
        let small = data.iter().filter(|(_, v)| *v < 10).count();
        assert!(small > data.len() / 3, "zipf mass at the head: {small}");
    }

    #[test]
    fn clustered_stays_in_band() {
        let spec = DatasetSpec {
            records: 1_000,
            bits: 16,
            distribution: Distribution::Clustered { spread: 0.1 },
            seed: 4,
        };
        let max = (1u64 << 16) - 1;
        let mid = max / 2;
        let band = (max as f64 * 0.1) as u64;
        assert!(spec
            .generate()
            .iter()
            .all(|(_, v)| *v >= mid - band && *v <= mid + band + 1));
    }

    #[test]
    fn query_values_come_from_data() {
        let spec = DatasetSpec::uniform(100, 16, 5);
        let data = spec.generate();
        let qs = sample_query_values(&data, 20, 6);
        let values: std::collections::HashSet<u64> = data.iter().map(|(_, v)| *v).collect();
        assert!(qs.iter().all(|q| values.contains(q)));
        assert_eq!(qs.len(), 20);
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let data = DatasetSpec::uniform(50, 8, 1).generate();
        let ids: std::collections::HashSet<[u8; 16]> = data.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 50);
    }
}
