//! Sustained-throughput benchmark: N seeded searchers driving a Zipf
//! query mix against a deployment, in-process or over the wire.
//!
//! The paper's evaluation reports single-search latency; this module
//! measures the serving story instead — how many verified searches per
//! second a deployment sustains and what the tail looks like. One
//! [`ThroughputSpec`] fully determines the dataset and every searcher's
//! query stream (same seed → same queries, byte for byte), so two runs
//! differ only in timing:
//!
//! * [`run_in_process`] drives a [`SlicerSystem`] directly. The protocol
//!   object requires `&mut` access (every search mutates the chain), so
//!   the N searchers are *logical*: their query streams interleave
//!   round-robin through one instance, which is exactly the serialized
//!   order a single-writer deployment imposes anyway.
//! * [`run_against_daemon`] opens one connection per searcher to a live
//!   `slicerd` and fans the searchers out over a [`slicer_par::Pool`],
//!   so wire framing, connection handling and daemon-side dispatch are
//!   all inside the measured window.
//!
//! Both paths produce a [`ThroughputReport`] whose [`Snapshot`] uses
//! the workspace bench-JSON schema — `examples/throughput_bench.rs`
//! writes it as `BENCH_throughput.json`, diffable by
//! `slicer-cli bench-diff` like every other committed baseline.

use crate::{sample_query_values, splitmix_stream, DatasetSpec, Distribution};
use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_crypto::Rng;
use slicer_daemon::{DaemonClient, DaemonError, Endpoint};
use slicer_par::Pool;
use slicer_telemetry::{Clock, Metrics, MonotonicClock, Snapshot, TelemetryHandle};
use std::fmt;

/// Everything that determines a throughput run except the target.
#[derive(Debug, Clone)]
pub struct ThroughputSpec {
    /// Records in the synthetic dataset.
    pub records: usize,
    /// Value domain width in bits.
    pub value_bits: u8,
    /// Master seed: dataset, query values and operators all derive from
    /// it.
    pub seed: u64,
    /// Number of searchers (connections in daemon mode, interleaved
    /// streams in-process).
    pub searchers: usize,
    /// Queries each searcher issues.
    pub queries_per_searcher: usize,
    /// Zipf exponent of the query-value popularity skew (1.0 = classic
    /// Zipf; the paper's uniform mix is the 0.0 limit).
    pub zipf_exponent: f64,
    /// Escrow payment attached to every search.
    pub payment: u128,
}

impl Default for ThroughputSpec {
    fn default() -> Self {
        ThroughputSpec {
            records: 200,
            value_bits: 8,
            seed: 42,
            searchers: 4,
            queries_per_searcher: 8,
            zipf_exponent: 1.0,
            payment: 1_000,
        }
    }
}

impl ThroughputSpec {
    /// Total searches the run will issue.
    pub fn total_queries(&self) -> usize {
        self.searchers * self.queries_per_searcher
    }

    /// The synthetic dataset for this spec (Zipf-skewed values, so the
    /// query mix's popular values really are popular in the data too).
    pub fn dataset(&self) -> Vec<([u8; 16], u64)> {
        DatasetSpec {
            records: self.records,
            bits: self.value_bits,
            seed: self.seed,
            distribution: Distribution::Zipf {
                exponent: self.zipf_exponent,
            },
        }
        .generate()
    }

    /// The deterministic query stream of searcher `index`: values drawn
    /// from the dataset (whose Zipf skew shapes popularity), operators
    /// cycling eq/lt/gt per searcher.
    pub fn queries_for(&self, data: &[([u8; 16], u64)], index: usize) -> Vec<Query> {
        let seed = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
        let values = sample_query_values(data, self.queries_per_searcher, seed);
        let mut ops = splitmix_stream(seed ^ 0x5EED);
        values
            .into_iter()
            .map(|v| match ops.next_u64() % 3 {
                0 => Query::equal(v),
                1 => Query::less_than(v),
                _ => Query::greater_than(v),
            })
            .collect()
    }
}

/// One search's measurement.
#[derive(Debug, Clone, Copy)]
struct Sample {
    latency_ns: u64,
    gas: u64,
    verified: bool,
}

/// Aggregated outcome of a throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Searches issued.
    pub searches: u64,
    /// Searches whose on-chain verification passed.
    pub verified: u64,
    /// Wall-clock span of the measured window, nanoseconds.
    pub wall_ns: u64,
    /// 99th-percentile per-search latency, nanoseconds.
    pub p99_ns: u64,
    /// Mean gas (request + verify) per search.
    pub mean_gas: u64,
    /// The run's metrics in the shared bench-JSON schema.
    pub snapshot: Snapshot,
}

impl ThroughputReport {
    /// Sustained verified-search throughput over the measured window.
    pub fn searches_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.searches as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// The snapshot as bench JSON (the `BENCH_throughput.json` payload).
    pub fn to_json(&self) -> String {
        self.snapshot.to_json()
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "searches={} verified={} wall={:.3}s throughput={:.1}/s p99={:.3}ms gas/search={}",
            self.searches,
            self.verified,
            self.wall_ns as f64 / 1e9,
            self.searches_per_sec(),
            self.p99_ns as f64 / 1e6,
            self.mean_gas
        )
    }
}

/// A throughput-run failure.
#[derive(Debug)]
pub enum ThroughputError {
    /// The in-process protocol rejected a step.
    Protocol(String),
    /// The daemon transport or a remote search failed.
    Daemon(DaemonError),
}

impl fmt::Display for ThroughputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThroughputError::Protocol(msg) => write!(f, "throughput protocol error: {msg}"),
            ThroughputError::Daemon(e) => write!(f, "throughput daemon error: {e}"),
        }
    }
}

impl std::error::Error for ThroughputError {}

impl From<DaemonError> for ThroughputError {
    fn from(e: DaemonError) -> Self {
        ThroughputError::Daemon(e)
    }
}

/// Runs the spec against a fresh in-process [`SlicerSystem`].
///
/// Setup and build happen *before* the measured window; the window
/// covers searches only.
///
/// # Errors
///
/// [`ThroughputError::Protocol`] when setup, build or a search fails.
pub fn run_in_process(spec: &ThroughputSpec) -> Result<ThroughputReport, ThroughputError> {
    let data = spec.dataset();
    let db: Vec<(RecordId, u64)> = data.iter().map(|(id, v)| (RecordId(*id), *v)).collect();
    let mut system = SlicerSystem::setup_with(
        SlicerConfig::with_bits(spec.value_bits),
        spec.seed,
        TelemetryHandle::disabled(),
    );
    system
        .build(&db)
        .map_err(|e| ThroughputError::Protocol(e.to_string()))?;

    let streams: Vec<Vec<Query>> = (0..spec.searchers)
        .map(|i| spec.queries_for(&data, i))
        .collect();

    let clock = MonotonicClock::new();
    let mut samples = Vec::with_capacity(spec.total_queries());
    let window_start = clock.now_nanos();
    // Round-robin across the logical searchers: query k of every
    // searcher before query k+1 of any, mirroring fair interleaving.
    for k in 0..spec.queries_per_searcher {
        for stream in &streams {
            let query = &stream[k];
            let t = clock.now_nanos();
            let outcome = system
                .search(query, spec.payment)
                .map_err(|e| ThroughputError::Protocol(e.to_string()))?;
            samples.push(Sample {
                latency_ns: clock.now_nanos() - t,
                gas: outcome.request_gas + outcome.verify_gas,
                verified: outcome.verified,
            });
        }
    }
    let wall_ns = clock.now_nanos() - window_start;
    Ok(summarize(spec, "in_process", &samples, wall_ns))
}

/// Runs the spec against a live `slicerd` at `endpoint`, one connection
/// per searcher, fanned out over `pool`.
///
/// The daemon must already hold the spec's dataset (use
/// [`ingest_into_daemon`]) — ingest stays outside the measured window.
///
/// # Errors
///
/// [`ThroughputError::Daemon`] when a connection or search fails.
pub fn run_against_daemon(
    spec: &ThroughputSpec,
    endpoint: &Endpoint,
    pool: &Pool,
) -> Result<ThroughputReport, ThroughputError> {
    let data = spec.dataset();
    let indices: Vec<usize> = (0..spec.searchers).collect();
    let clock = MonotonicClock::new();
    let window_start = clock.now_nanos();
    let per_searcher: Vec<Result<Vec<Sample>, DaemonError>> = pool.par_map(&indices, |&i| {
        let mut client = DaemonClient::connect(endpoint)?;
        let queries = spec.queries_for(&data, i);
        let mut out = Vec::with_capacity(queries.len());
        for query in queries {
            let t = clock.now_nanos();
            let reply = client.search(query, spec.payment)?;
            out.push(Sample {
                latency_ns: clock.now_nanos() - t,
                gas: reply.request_gas + reply.verify_gas,
                verified: reply.verified,
            });
        }
        Ok(out)
    });
    let wall_ns = clock.now_nanos() - window_start;
    let mut samples = Vec::with_capacity(spec.total_queries());
    for result in per_searcher {
        samples.extend(result?);
    }
    Ok(summarize(spec, "daemon", &samples, wall_ns))
}

/// Loads the spec's dataset into a live daemon (one ingest batch).
///
/// # Errors
///
/// Propagates transport and daemon-side failures.
pub fn ingest_into_daemon(spec: &ThroughputSpec, endpoint: &Endpoint) -> Result<u64, DaemonError> {
    let mut client = DaemonClient::connect(endpoint)?;
    let records: Vec<(u64, u64)> = spec
        .dataset()
        .iter()
        .enumerate()
        .map(|(i, (_, v))| (i as u64 + 1, *v))
        .collect();
    let (count, _, _) = client.ingest(records)?;
    Ok(count)
}

/// Folds raw samples into the report + bench-JSON snapshot.
fn summarize(
    spec: &ThroughputSpec,
    target: &str,
    samples: &[Sample],
    wall_ns: u64,
) -> ThroughputReport {
    let metrics = Metrics::new();
    let mut verified = 0u64;
    let mut total_gas = 0u64;
    for s in samples {
        metrics.observe("throughput.search.ns", s.latency_ns);
        if s.verified {
            verified += 1;
        }
        total_gas += s.gas;
    }
    let searches = samples.len() as u64;
    metrics.count("throughput.searches", searches);
    metrics.count("throughput.verified", verified);
    metrics.count("throughput.gas.total", total_gas);
    metrics.gauge("throughput.searchers", spec.searchers as u64);
    metrics.gauge("throughput.records", spec.records as u64);
    metrics.gauge("throughput.wall_ns", wall_ns);
    metrics.gauge(&format!("throughput.target.{target}"), 1);
    let snapshot = Snapshot::of(&metrics);
    let p99_ns = snapshot
        .histogram("throughput.search.ns")
        .map_or(0, |h| h.p99);
    ThroughputReport {
        searches,
        verified,
        wall_ns,
        p99_ns,
        mean_gas: if searches == 0 {
            0
        } else {
            total_gas / searches
        },
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ThroughputSpec {
        ThroughputSpec {
            records: 24,
            value_bits: 8,
            seed: 7,
            searchers: 3,
            queries_per_searcher: 2,
            zipf_exponent: 1.0,
            payment: 1_000,
        }
    }

    #[test]
    fn query_streams_are_deterministic_and_distinct_per_searcher() {
        let spec = tiny();
        let data = spec.dataset();
        let a0 = spec.queries_for(&data, 0);
        let a0_again = spec.queries_for(&data, 0);
        let a1 = spec.queries_for(&data, 1);
        assert_eq!(format!("{a0:?}"), format!("{a0_again:?}"));
        assert_ne!(format!("{a0:?}"), format!("{a1:?}"));
        assert_eq!(a0.len(), spec.queries_per_searcher);
    }

    #[test]
    fn in_process_run_reports_verified_searches() {
        let spec = tiny();
        let report = run_in_process(&spec).expect("tiny run succeeds");
        assert_eq!(report.searches, spec.total_queries() as u64);
        assert_eq!(report.verified, report.searches, "all searches verify");
        assert!(report.wall_ns > 0);
        assert!(report.searches_per_sec() > 0.0);
        assert!(report.p99_ns > 0);
        assert!(report.mean_gas > 0);
        let json = report.to_json();
        assert!(json.contains("throughput.search.ns"));
        assert!(json.contains("\"throughput.searches\""));
        slicer_telemetry::json::parse(&json).expect("snapshot JSON is valid");
    }

    #[test]
    fn report_snapshot_diffs_clean_against_itself() {
        let report = run_in_process(&tiny()).expect("tiny run succeeds");
        let doc = slicer_testkit::parse_bench_json(&report.to_json()).expect("parses");
        assert!(slicer_testkit::diff(&doc, &doc, &slicer_testkit::DiffConfig::default()).ok());
    }
}
