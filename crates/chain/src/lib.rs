//! # slicer-chain
//!
//! An in-process blockchain simulator standing in for the Ethereum (Rinkeby)
//! deployment of the paper's prototype.
//!
//! The paper uses the chain for three things, all reproduced here:
//!
//! 1. **Trusted storage** of the accumulator digest `Ac` (freshness),
//! 2. **Trusted execution** of result verification (Algorithm 5) via a
//!    smart contract, and
//! 3. **Fair payment**: search fees are escrowed with the request and
//!    released to the cloud only when verification passes (Section IV-A).
//!
//! Blocks are hash-chained and sealed by a single proof-of-authority
//! sealer; every transaction is metered against an EVM-flavoured
//! [`GasSchedule`] (21 000 intrinsic gas, 16/4 gas per calldata byte,
//! SSTORE/SLOAD costs, EIP-198 MODEXP pricing for the accumulator
//! exponentiations) so that Table II's gas figures can be regenerated with
//! the same cost structure. Contracts are native Rust objects implementing
//! the [`Contract`] trait; their persistent state lives in per-address
//! key/value storage inside the world state, and all storage access is
//! metered through the [`CallContext`].
//!
//! # Examples
//!
//! ```
//! use slicer_chain::{Address, Blockchain, SlicerContract};
//!
//! let mut chain = Blockchain::new();
//! let owner = Address::from_byte(1);
//! chain.create_account(owner, 1_000_000_000);
//! let receipt = chain
//!     .deploy_contract(owner, Box::new(SlicerContract::fixed_512()), 0)
//!     .unwrap();
//! assert!(receipt.gas_used > 700_000); // Table II: deployment ≈ 745k gas
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod chain;
mod contract;
mod error;
mod gas;
mod slicer_contract;
mod tx;
mod types;

pub use block::Block;
pub use chain::Blockchain;
pub use contract::{CallContext, Contract};
pub use error::{ChainError, ContractError};
pub use gas::{
    gas_to_usd, modexp_gas_eip198, modexp_gas_eip2565, GasBreakdown, GasCategory, GasMeter,
    GasSchedule,
};
pub use slicer_contract::{
    SlicerCall, SlicerContract, TokenOnChain, VerifyEntry, SELECTOR_REQUEST, SELECTOR_SET_AC,
    SELECTOR_SUBMIT,
};
pub use tx::{LogEvent, Transaction, TxReceipt, TxStatus};
pub use types::{Address, H256};
