//! The native-contract execution interface.

use crate::error::ContractError;
use crate::gas::{GasBreakdown, GasCategory, GasMeter, GasSchedule};
use crate::types::Address;
use std::collections::BTreeMap;

/// Per-contract persistent key/value storage. An ordered map so storage
/// iteration (state-root hashing, debugging dumps) is deterministic.
pub type ContractStorage = BTreeMap<Vec<u8>, Vec<u8>>;

/// Execution context handed to a contract call.
///
/// All storage access goes through the context so it can be gas-metered;
/// value payouts are collected and applied by the chain only if the call
/// succeeds (reverts roll everything back).
#[derive(Debug)]
pub struct CallContext<'a> {
    /// Transaction sender.
    pub caller: Address,
    /// Value attached to the call (already escrowed at the contract).
    pub value: u128,
    /// Address of the executing contract.
    pub this: Address,
    pub(crate) storage: &'a mut ContractStorage,
    pub(crate) meter: &'a mut GasMeter,
    pub(crate) schedule: &'a GasSchedule,
    pub(crate) payouts: &'a mut Vec<(Address, u128)>,
    pub(crate) logs: &'a mut Vec<crate::tx::LogEvent>,
    pub(crate) breakdown: &'a mut GasBreakdown,
}

impl CallContext<'_> {
    /// Charges raw gas, attributed to [`GasCategory::Other`].
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    pub fn charge(&mut self, gas: u64) -> Result<(), ContractError> {
        self.charge_as(GasCategory::Other, gas)
    }

    /// Charges gas attributed to a category. The attribution records the
    /// meter's actual delta (not the requested amount), so on an
    /// out-of-gas abort the breakdown still sums exactly to `gas_used`.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    pub fn charge_as(&mut self, category: GasCategory, gas: u64) -> Result<(), ContractError> {
        let before = self.meter.used();
        let result = self.meter.charge(gas);
        self.breakdown.add(category, self.meter.used() - before);
        result
    }

    /// The active gas schedule.
    pub fn schedule(&self) -> &GasSchedule {
        self.schedule
    }

    /// Metered storage read.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    pub fn sload(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ContractError> {
        self.charge_as(GasCategory::Sload, self.schedule.sload)?;
        Ok(self.storage.get(key).cloned())
    }

    /// Metered storage write. Charges the set cost for fresh slots and the
    /// reset cost for overwrites — per EVM semantics, updating the stored
    /// accumulator digest is the cheap path (Table II's 29 144-gas insert).
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    pub fn sstore(&mut self, key: &[u8], value: Vec<u8>) -> Result<(), ContractError> {
        let words = (value.len() as u64).div_ceil(32).max(1);
        let cost = if self.storage.contains_key(key) {
            self.schedule.sstore_reset * words
        } else {
            self.schedule.sstore_set * words
        };
        self.charge_as(GasCategory::Sstore, cost)?;
        self.storage.insert(key.to_vec(), value);
        Ok(())
    }

    /// Queues a balance transfer from the contract to `to`, applied when
    /// the call commits.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    pub fn transfer(&mut self, to: Address, amount: u128) -> Result<(), ContractError> {
        self.charge_as(GasCategory::Transfer, self.schedule.call_value_transfer)?;
        self.payouts.push((to, amount));
        Ok(())
    }

    /// Emits an event (an EVM `LOG`-style record, visible in the receipt
    /// and discarded if the call reverts).
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    pub fn emit(&mut self, topic: &str, data: Vec<u8>) -> Result<(), ContractError> {
        // LOG1-flavoured pricing: 375 base + 375 per topic + 8 per byte.
        self.charge_as(
            GasCategory::Event,
            750 + 8 * (topic.len() + data.len()) as u64,
        )?;
        self.logs.push(crate::tx::LogEvent {
            address: self.this,
            topic: topic.to_string(),
            data,
        });
        Ok(())
    }
}

/// A native contract: Rust code executing under gas metering with
/// chain-persisted storage.
///
/// `code()` returns the pseudo-bytecode whose length determines the
/// deployment's code-deposit gas (we serialize the contract's verification
/// parameters, mirroring how a compiled Solidity artifact embeds them).
pub trait Contract: Send {
    /// The deployable code image (charged at `code_deposit` gas per byte).
    fn code(&self) -> Vec<u8>;

    /// Handles a call.
    ///
    /// # Errors
    ///
    /// Any [`ContractError`] reverts the transaction: storage changes and
    /// queued payouts are discarded and the attached value is refunded.
    fn execute(&self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, ContractError>;
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;

    /// A minimal counter contract used by chain runtime tests.
    pub struct Counter;

    impl Contract for Counter {
        fn code(&self) -> Vec<u8> {
            vec![0xC0; 100]
        }

        fn execute(
            &self,
            ctx: &mut CallContext<'_>,
            input: &[u8],
        ) -> Result<Vec<u8>, ContractError> {
            match input.first() {
                Some(0x01) => {
                    let cur = ctx
                        .sload(b"count")?
                        .map(|v| u64::from_be_bytes(v.try_into().unwrap_or([0u8; 8])))
                        .unwrap_or(0);
                    ctx.sstore(b"count", (cur + 1).to_be_bytes().to_vec())?;
                    Ok((cur + 1).to_be_bytes().to_vec())
                }
                Some(0x02) => Err(ContractError::Reverted("requested revert".into())),
                _ => Err(ContractError::BadCalldata("unknown selector".into())),
            }
        }
    }
}
