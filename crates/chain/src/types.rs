//! Core chain value types.

use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};
use slicer_crypto::sha256;
use std::fmt;

/// A 20-byte account address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address(pub [u8; 20]);

impl Encode for Address {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for Address {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Address(<[u8; 20]>::decode(reader)?))
    }
}

impl Address {
    /// The zero address.
    pub const ZERO: Address = Address([0u8; 20]);

    /// Test helper: an address whose bytes are all `b`.
    pub fn from_byte(b: u8) -> Self {
        Address([b; 20])
    }

    /// Derives a deterministic contract address from deployer and nonce.
    pub fn for_contract(deployer: &Address, nonce: u64) -> Self {
        let mut input = Vec::with_capacity(28);
        input.extend_from_slice(&deployer.0);
        input.extend_from_slice(&nonce.to_be_bytes());
        let h = sha256(&input);
        Address(*h.last_chunk().unwrap_or(&[0u8; 20]))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in self.0.iter().take(4) {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

/// A 32-byte hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct H256(pub [u8; 32]);

impl Encode for H256 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for H256 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(H256(<[u8; 32]>::decode(reader)?))
    }
}

impl H256 {
    /// Hashes arbitrary bytes.
    pub fn of(data: &[u8]) -> Self {
        H256(sha256(data))
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in self.0.iter().take(6) {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_addresses_depend_on_nonce() {
        let d = Address::from_byte(9);
        assert_ne!(Address::for_contract(&d, 0), Address::for_contract(&d, 1));
    }

    #[test]
    fn display_is_abbreviated() {
        let a = Address::from_byte(0xAB);
        assert_eq!(a.to_string(), "0xabababab…");
    }

    #[test]
    fn h256_of_is_sha256() {
        assert_eq!(H256::of(b"x").0, slicer_crypto::sha256(b"x"));
    }
}
