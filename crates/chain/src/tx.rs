//! Transactions and receipts.

use crate::gas::GasBreakdown;
use crate::types::{Address, H256};
use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};

/// A transaction submitted to the chain.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Sender.
    pub from: Address,
    /// Target contract (plain value transfers use a contract-less target).
    pub to: Address,
    /// Value in wei attached to the call (the search-fee escrow).
    pub value: u128,
    /// ABI payload.
    pub data: Vec<u8>,
    /// Gas limit.
    pub gas_limit: u64,
}

slicer_crypto::impl_codec!(Transaction {
    from,
    to,
    value,
    data,
    gas_limit,
});

impl Transaction {
    /// A call transaction with a default 10M gas limit.
    pub fn call(from: Address, to: Address, value: u128, data: Vec<u8>) -> Self {
        Transaction {
            from,
            to,
            value,
            data,
            gas_limit: 10_000_000,
        }
    }

    /// Deterministic transaction hash.
    pub fn hash(&self, nonce: u64) -> H256 {
        let mut input = Vec::with_capacity(60 + self.data.len());
        input.extend_from_slice(&self.from.0);
        input.extend_from_slice(&self.to.0);
        input.extend_from_slice(&self.value.to_be_bytes());
        input.extend_from_slice(&nonce.to_be_bytes());
        input.extend_from_slice(&self.data);
        H256::of(&input)
    }
}

/// Outcome of transaction execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxStatus {
    /// Executed successfully.
    Succeeded,
    /// Reverted (state rolled back, value refunded); carries the reason.
    Reverted(String),
}

impl Encode for TxStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TxStatus::Succeeded => 0u32.encode(out),
            TxStatus::Reverted(reason) => {
                1u32.encode(out);
                reason.encode(out);
            }
        }
    }
}

impl Decode for TxStatus {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(reader)? {
            0 => Ok(TxStatus::Succeeded),
            1 => Ok(TxStatus::Reverted(String::decode(reader)?)),
            v => Err(CodecError::msg(format!("invalid TxStatus variant {v}"))),
        }
    }
}

impl TxStatus {
    /// True for [`TxStatus::Succeeded`].
    pub fn is_success(&self) -> bool {
        matches!(self, TxStatus::Succeeded)
    }
}

/// An event emitted by a contract during execution (discarded on revert).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// Emitting contract.
    pub address: Address,
    /// Topic string (e.g. `"Settled"`).
    pub topic: String,
    /// Event payload.
    pub data: Vec<u8>,
}

slicer_crypto::impl_codec!(LogEvent {
    address,
    topic,
    data
});

/// Receipt of an executed transaction.
#[derive(Debug, Clone)]
pub struct TxReceipt {
    /// Hash of the transaction.
    pub tx_hash: H256,
    /// Block in which it was included.
    pub block_number: u64,
    /// Total gas consumed (intrinsic + execution).
    pub gas_used: u64,
    /// Execution outcome.
    pub status: TxStatus,
    /// Return data from the contract (empty on revert).
    pub output: Vec<u8>,
    /// Events emitted by the call (empty on revert).
    pub logs: Vec<LogEvent>,
    /// `gas_used` attributed per charge category; always sums to
    /// `gas_used`.
    pub gas_breakdown: GasBreakdown,
}

slicer_crypto::impl_codec!(TxReceipt {
    tx_hash,
    block_number,
    gas_used,
    status,
    output,
    logs,
    gas_breakdown,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_depends_on_nonce_and_data() {
        let tx = Transaction::call(Address::from_byte(1), Address::from_byte(2), 0, vec![1]);
        assert_ne!(tx.hash(0), tx.hash(1));
        let tx2 = Transaction::call(Address::from_byte(1), Address::from_byte(2), 0, vec![2]);
        assert_ne!(tx.hash(0), tx2.hash(0));
    }

    #[test]
    fn status_helpers() {
        assert!(TxStatus::Succeeded.is_success());
        assert!(!TxStatus::Reverted("x".into()).is_success());
    }
}
