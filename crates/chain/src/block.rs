//! Blocks and the hash chain.

use crate::tx::TxReceipt;
use crate::types::H256;

/// A sealed block.
///
/// Timestamps are logical (the block height doubles as the clock): the
/// simulator is fully deterministic, which the reproducibility of the
/// benchmark harness depends on.
#[derive(Debug, Clone)]
pub struct Block {
    /// Height of this block.
    pub number: u64,
    /// Hash of the parent block (zero for genesis).
    pub parent_hash: H256,
    /// Hash of this block.
    pub hash: H256,
    /// Receipts of the transactions executed in this block.
    pub receipts: Vec<TxReceipt>,
}

slicer_crypto::impl_codec!(Block {
    number,
    parent_hash,
    hash,
    receipts,
});

impl Block {
    /// The genesis block.
    pub fn genesis() -> Self {
        let hash = H256::of(b"slicer-genesis");
        Block {
            number: 0,
            parent_hash: H256::default(),
            hash,
            receipts: Vec::new(),
        }
    }

    /// Seals a successor block over the given receipts.
    pub fn seal(parent: &Block, receipts: Vec<TxReceipt>) -> Self {
        let number = parent.number + 1;
        let mut input = Vec::with_capacity(40 + receipts.len() * 32);
        input.extend_from_slice(&number.to_be_bytes());
        input.extend_from_slice(&parent.hash.0);
        for r in &receipts {
            input.extend_from_slice(&r.tx_hash.0);
        }
        Block {
            number,
            parent_hash: parent.hash,
            hash: H256::of(&input),
            receipts,
        }
    }

    /// Verifies the chain link to `parent` and this block's own hash.
    pub fn verify_link(&self, parent: &Block) -> bool {
        if self.parent_hash != parent.hash || self.number != parent.number + 1 {
            return false;
        }
        let mut input = Vec::with_capacity(40 + self.receipts.len() * 32);
        input.extend_from_slice(&self.number.to_be_bytes());
        input.extend_from_slice(&self.parent_hash.0);
        for r in &self.receipts {
            input.extend_from_slice(&r.tx_hash.0);
        }
        H256::of(&input) == self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxStatus;

    fn receipt(tag: u8) -> TxReceipt {
        TxReceipt {
            tx_hash: H256::of(&[tag]),
            block_number: 1,
            gas_used: 21_000,
            status: TxStatus::Succeeded,
            output: vec![],
            logs: vec![],
            gas_breakdown: Default::default(),
        }
    }

    #[test]
    fn chain_links_verify() {
        let g = Block::genesis();
        let b1 = Block::seal(&g, vec![receipt(1)]);
        let b2 = Block::seal(&b1, vec![receipt(2)]);
        assert!(b1.verify_link(&g));
        assert!(b2.verify_link(&b1));
        assert!(!b2.verify_link(&g));
    }

    #[test]
    fn tampered_receipts_break_the_hash() {
        let g = Block::genesis();
        let mut b1 = Block::seal(&g, vec![receipt(1)]);
        b1.receipts[0].tx_hash = H256::of(&[9]);
        assert!(!b1.verify_link(&g));
    }
}
