//! The Slicer verification smart contract (Algorithm 5 + fair payment).
//!
//! The contract stores the owner's accumulator digest `Ac` and, for each
//! search request, the user's search tokens and escrowed payment. When the
//! cloud submits results it recomputes, *on chain*:
//!
//! 1. `h ← H(er)` — the multiset hash of the returned ciphertexts,
//! 2. `x ← H_prime(t_j ‖ j ‖ G₁ ‖ G₂ ‖ h)` — the prime representative,
//! 3. `VerifyMem(x, vo)` — one modular exponentiation against `Ac`.
//!
//! If every slice of the request verifies, the escrow is paid to the cloud;
//! otherwise it is refunded to the data user (fairness in the mutually
//! distrusting setting of Section IV-B). Every step is charged against the
//! EVM-flavoured gas schedule, which is what regenerates Table II.

use crate::contract::{CallContext, Contract};
use crate::error::ContractError;
use crate::gas::GasCategory;
use crate::types::Address;
use slicer_accumulator::{hash_to_prime_counted, RsaParams, DEFAULT_PRIME_BITS};
use slicer_bignum::BigUint;
use slicer_crypto::sha256;
use slicer_mshash::MsetHash;

/// Selector byte: owner updates the accumulator digest.
pub const SELECTOR_SET_AC: u8 = 0x01;
/// Selector byte: user registers a search request with tokens + escrow.
pub const SELECTOR_REQUEST: u8 = 0x02;
/// Selector byte: cloud submits results + verification objects.
pub const SELECTOR_SUBMIT: u8 = 0x03;

/// A search token as published on chain: `(t_j, j, G₁, G₂)` of Algorithm 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenOnChain {
    /// Newest trapdoor `t_j` (fixed-width big-endian bytes).
    pub trapdoor: Vec<u8>,
    /// Update count `j`.
    pub j: u32,
    /// Index-label PRF key `G₁`.
    pub g1: [u8; 32],
    /// Mask PRF key `G₂`.
    pub g2: [u8; 32],
}

impl TokenOnChain {
    /// The byte string `t_j ‖ j ‖ G₁ ‖ G₂` fed to `H_prime` (together with
    /// the multiset hash).
    pub fn material(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.trapdoor.len() + 4 + 64);
        out.extend_from_slice(&self.trapdoor);
        out.extend_from_slice(&self.j.to_be_bytes());
        out.extend_from_slice(&self.g1);
        out.extend_from_slice(&self.g2);
        out
    }
}

/// One verifiable slice result submitted by the cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyEntry {
    /// Which registered token this entry answers.
    pub token_idx: u16,
    /// The encrypted matched results `er` for this token.
    pub er: Vec<Vec<u8>>,
    /// The membership witness `vo`.
    pub vo: Vec<u8>,
}

/// Calls understood by the Slicer contract, with a compact binary ABI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlicerCall {
    /// `SetAccumulator(Ac)` — owner only.
    SetAccumulator(Vec<u8>),
    /// `RequestSearch` — registers tokens, names the serving cloud and
    /// escrows the attached transaction value as the search fee.
    RequestSearch {
        /// Caller-chosen request identifier.
        request_id: [u8; 32],
        /// The cloud allowed to claim the fee.
        cloud: Address,
        /// The search tokens (Algorithm 3 output).
        tokens: Vec<TokenOnChain>,
    },
    /// `SubmitResult` — cloud submits one entry per registered token.
    SubmitResult {
        /// The request being answered.
        request_id: [u8; 32],
        /// Per-token results and witnesses.
        entries: Vec<VerifyEntry>,
    },
}

impl SlicerCall {
    /// Serializes the call to calldata bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            SlicerCall::SetAccumulator(ac) => {
                out.push(SELECTOR_SET_AC);
                put_bytes16(&mut out, ac);
            }
            SlicerCall::RequestSearch {
                request_id,
                cloud,
                tokens,
            } => {
                out.push(SELECTOR_REQUEST);
                out.extend_from_slice(request_id);
                out.extend_from_slice(&cloud.0);
                out.extend_from_slice(&(tokens.len() as u16).to_be_bytes());
                for t in tokens {
                    put_bytes16(&mut out, &t.trapdoor);
                    out.extend_from_slice(&t.j.to_be_bytes());
                    out.extend_from_slice(&t.g1);
                    out.extend_from_slice(&t.g2);
                }
            }
            SlicerCall::SubmitResult {
                request_id,
                entries,
            } => {
                out.push(SELECTOR_SUBMIT);
                out.extend_from_slice(request_id);
                out.extend_from_slice(&(entries.len() as u16).to_be_bytes());
                for e in entries {
                    out.extend_from_slice(&e.token_idx.to_be_bytes());
                    out.extend_from_slice(&(e.er.len() as u32).to_be_bytes());
                    for r in &e.er {
                        put_bytes16(&mut out, r);
                    }
                    put_bytes16(&mut out, &e.vo);
                }
            }
        }
        out
    }

    /// Parses calldata.
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::BadCalldata`] on truncated or malformed
    /// input.
    pub fn decode(data: &[u8]) -> Result<Self, ContractError> {
        let mut r = Reader::new(data);
        match r.u8()? {
            SELECTOR_SET_AC => {
                let ac = r.bytes16()?;
                r.finish()?;
                Ok(SlicerCall::SetAccumulator(ac))
            }
            SELECTOR_REQUEST => {
                let request_id = r.array32()?;
                let cloud = Address(r.array20()?);
                let n = r.u16()?;
                let mut tokens = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    tokens.push(TokenOnChain {
                        trapdoor: r.bytes16()?,
                        j: r.u32()?,
                        g1: r.array32()?,
                        g2: r.array32()?,
                    });
                }
                r.finish()?;
                Ok(SlicerCall::RequestSearch {
                    request_id,
                    cloud,
                    tokens,
                })
            }
            SELECTOR_SUBMIT => {
                let request_id = r.array32()?;
                let n = r.u16()?;
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let token_idx = r.u16()?;
                    let n_er = r.u32()?;
                    let mut er = Vec::with_capacity(n_er as usize);
                    for _ in 0..n_er {
                        er.push(r.bytes16()?);
                    }
                    let vo = r.bytes16()?;
                    entries.push(VerifyEntry { token_idx, er, vo });
                }
                r.finish()?;
                Ok(SlicerCall::SubmitResult {
                    request_id,
                    entries,
                })
            }
            s => Err(ContractError::BadCalldata(format!(
                "unknown selector {s:#x}"
            ))),
        }
    }
}

fn put_bytes16(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u16).to_be_bytes());
    out.extend_from_slice(data);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ContractError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| ContractError::BadCalldata("truncated input".into()))?;
        let s = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| ContractError::BadCalldata("truncated input".into()))?;
        self.pos = end;
        Ok(s)
    }

    /// Takes exactly `N` bytes as a fixed array.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], ContractError> {
        self.take(N)?
            .try_into()
            .map_err(|_| ContractError::BadCalldata("truncated input".into()))
    }

    fn u8(&mut self) -> Result<u8, ContractError> {
        Ok(self.array::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, ContractError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, ContractError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    fn array20(&mut self) -> Result<[u8; 20], ContractError> {
        self.array()
    }

    fn array32(&mut self) -> Result<[u8; 32], ContractError> {
        self.array()
    }

    fn bytes16(&mut self) -> Result<Vec<u8>, ContractError> {
        let n = self.u16()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn finish(&self) -> Result<(), ContractError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(ContractError::BadCalldata("trailing bytes".into()))
        }
    }
}

/// The deployed Slicer verification contract.
#[derive(Debug)]
pub struct SlicerContract {
    params: RsaParams,
    prime_bits: u32,
    owner: Address,
}

impl SlicerContract {
    /// Contract over the fixed 512-bit accumulator parameters, owned by the
    /// zero address (tests override with [`SlicerContract::new`]).
    pub fn fixed_512() -> Self {
        Self::new(RsaParams::fixed_512(), DEFAULT_PRIME_BITS, Address::ZERO)
    }

    /// Contract with explicit parameters and owner (only the owner may call
    /// `SetAccumulator`).
    pub fn new(params: RsaParams, prime_bits: u32, owner: Address) -> Self {
        SlicerContract {
            params,
            prime_bits,
            owner,
        }
    }

    /// Storage key for a request record.
    fn req_key(id: &[u8; 32]) -> Vec<u8> {
        let mut k = b"req:".to_vec();
        k.extend_from_slice(id);
        k
    }

    fn verify_entry(
        &self,
        ctx: &mut CallContext<'_>,
        token: &TokenOnChain,
        entry: &VerifyEntry,
        ac: &BigUint,
    ) -> Result<bool, ContractError> {
        // h ← H(er): hash every encrypted result into the multiset hash.
        let mut h = MsetHash::empty();
        for r in &entry.er {
            ctx.charge_as(GasCategory::Hash, ctx.schedule().hash_cost(r.len()))?;
            ctx.charge_as(GasCategory::FieldMul, ctx.schedule().field_mul)?;
            h.insert(r);
        }
        // x ← H_prime(t_j ‖ j ‖ G1 ‖ G2 ‖ h)
        let mut material = token.material();
        material.extend_from_slice(&h.to_bytes());
        ctx.charge_as(GasCategory::Hash, ctx.schedule().hash_cost(material.len()))?;
        let (x, candidates) = hash_to_prime_counted(&material, self.prime_bits)
            .map_err(|e| ContractError::Reverted(e.to_string()))?;
        // Charge the H_prime walk: trial division on every candidate, plus
        // Miller–Rabin only on trial-division survivors (~1 in 5 at 128
        // bits, almost all rejected by their first round) and the full
        // 20-round confirmation of the final prime.
        let mr_rounds = 20 + candidates / 5;
        ctx.charge_as(
            GasCategory::HPrime,
            ctx.schedule().hprime_candidate * candidates,
        )?;
        ctx.charge_as(
            GasCategory::MillerRabin,
            ctx.schedule().miller_rabin_round * mr_rounds,
        )?;
        // VerifyMem(x, vo): one big modexp against the stored digest.
        let elem = self.params.element_bytes();
        ctx.charge_as(
            GasCategory::Modexp,
            ctx.schedule()
                .modexp_cost(elem, self.prime_bits as u64, elem),
        )?;
        let vo = BigUint::from_bytes_be(&entry.vo);
        Ok(&self.params.powmod(&vo, &x) == ac)
    }
}

impl Contract for SlicerContract {
    /// Pseudo-bytecode: a tagged header, the verification parameters
    /// (modulus + generator, as a compiled artifact would embed them) and a
    /// deterministic body standing in for the compiled verification logic.
    /// Sized so deployment lands at the paper's ≈ 745k gas (Table II).
    fn code(&self) -> Vec<u8> {
        let mut code = b"SLICER-VERIFIER-V1".to_vec();
        code.extend_from_slice(&self.params.modulus().to_bytes_be());
        code.extend_from_slice(&self.params.generator().to_bytes_be());
        // Deterministic nonzero filler emulating the compiled contract body.
        let mut seed = sha256(&code);
        while code.len() < 3_205 {
            for b in seed {
                code.push(if b == 0 { 0x5B } else { b });
            }
            seed = sha256(&seed);
        }
        code.truncate(3_205);
        code
    }

    fn execute(&self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, ContractError> {
        match SlicerCall::decode(input)? {
            SlicerCall::SetAccumulator(ac) => {
                if ctx.caller != self.owner {
                    return Err(ContractError::Unauthorized);
                }
                ctx.sstore(b"ac", ac)?;
                ctx.emit("AccumulatorUpdated", Vec::new())?;
                Ok(Vec::new())
            }
            SlicerCall::RequestSearch {
                request_id,
                cloud,
                tokens,
            } => {
                let key = Self::req_key(&request_id);
                if ctx.sload(&key)?.is_some() {
                    return Err(ContractError::Reverted("request id already used".into()));
                }
                // Persist (user, cloud, amount, tokens) for the settlement.
                let mut record = Vec::new();
                record.extend_from_slice(&ctx.caller.0);
                record.extend_from_slice(&cloud.0);
                record.extend_from_slice(&ctx.value.to_be_bytes());
                record.extend_from_slice(&(tokens.len() as u16).to_be_bytes());
                for t in &tokens {
                    put_bytes16(&mut record, &t.trapdoor);
                    record.extend_from_slice(&t.j.to_be_bytes());
                    record.extend_from_slice(&t.g1);
                    record.extend_from_slice(&t.g2);
                }
                ctx.sstore(&key, record)?;
                ctx.emit("SearchRequested", request_id.to_vec())?;
                Ok(Vec::new())
            }
            SlicerCall::SubmitResult {
                request_id,
                entries,
            } => {
                let key = Self::req_key(&request_id);
                let record = ctx
                    .sload(&key)?
                    .ok_or_else(|| ContractError::Reverted("unknown request".into()))?;
                let mut r = Reader::new(&record);
                let user = Address(r.array20()?);
                let cloud = Address(r.array20()?);
                let amount = u128::from_be_bytes(r.array()?);
                let n_tokens = r.u16()?;
                let mut tokens = Vec::with_capacity(n_tokens as usize);
                for _ in 0..n_tokens {
                    tokens.push(TokenOnChain {
                        trapdoor: r.bytes16()?,
                        j: r.u32()?,
                        g1: r.array32()?,
                        g2: r.array32()?,
                    });
                }
                if ctx.caller != cloud {
                    return Err(ContractError::Unauthorized);
                }

                let ac_bytes = ctx
                    .sload(b"ac")?
                    .ok_or_else(|| ContractError::Reverted("accumulator not set".into()))?;
                let ac = BigUint::from_bytes_be(&ac_bytes);

                // Every token must be answered exactly once.
                let mut seen = vec![false; tokens.len()];
                let mut all_ok = entries.len() == tokens.len();
                for e in &entries {
                    let idx = e.token_idx as usize;
                    let (Some(token), Some(slot)) = (tokens.get(idx), seen.get_mut(idx)) else {
                        all_ok = false;
                        break;
                    };
                    if *slot {
                        all_ok = false;
                        break;
                    }
                    *slot = true;
                    if !self.verify_entry(ctx, token, e, &ac)? {
                        all_ok = false;
                        break;
                    }
                }
                all_ok = all_ok && seen.iter().all(|&s| s);

                // Settle: pay the cloud on success, refund the user on
                // failure (Algorithm 5's payment rule).
                let beneficiary = if all_ok { cloud } else { user };
                if amount > 0 {
                    ctx.transfer(beneficiary, amount)?;
                }
                // Mark settled by clearing the stored tokens.
                ctx.sstore(&key, b"settled".to_vec())?;
                // The settlement outcome is a public event: anyone can
                // audit who was paid for which request.
                let mut event = request_id.to_vec();
                event.push(u8::from(all_ok));
                ctx.emit("Settled", event)?;
                Ok(vec![u8::from(all_ok)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calldata_roundtrip_all_variants() {
        let calls = vec![
            SlicerCall::SetAccumulator(vec![1, 2, 3]),
            SlicerCall::RequestSearch {
                request_id: [9u8; 32],
                cloud: Address::from_byte(7),
                tokens: vec![TokenOnChain {
                    trapdoor: vec![4; 64],
                    j: 3,
                    g1: [1; 32],
                    g2: [2; 32],
                }],
            },
            SlicerCall::SubmitResult {
                request_id: [9u8; 32],
                entries: vec![VerifyEntry {
                    token_idx: 0,
                    er: vec![vec![5; 48], vec![6; 48]],
                    vo: vec![7; 64],
                }],
            },
        ];
        for c in calls {
            assert_eq!(SlicerCall::decode(&c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SlicerCall::decode(&[]).is_err());
        assert!(SlicerCall::decode(&[0xFF]).is_err());
        assert!(SlicerCall::decode(&[SELECTOR_SET_AC, 0, 5, 1]).is_err()); // truncated
        let mut trailing = SlicerCall::SetAccumulator(vec![1]).encode();
        trailing.push(0);
        assert!(SlicerCall::decode(&trailing).is_err());
    }

    #[test]
    fn code_image_is_stable_and_sized_for_table2() {
        let c = SlicerContract::fixed_512();
        let code = c.code();
        assert_eq!(code.len(), 3_205);
        assert_eq!(code, c.code(), "deterministic");
        assert!(code.iter().all(|&b| b != 0), "nonzero for calldata pricing");
    }
}
