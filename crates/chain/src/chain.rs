//! The blockchain runtime: accounts, deployment, transaction execution and
//! proof-of-authority sealing.

use crate::block::Block;
use crate::contract::{Contract, ContractStorage};
use crate::error::ChainError;
use crate::gas::{GasBreakdown, GasCategory, GasMeter, GasSchedule};
use crate::tx::{Transaction, TxReceipt, TxStatus};
use crate::types::{Address, H256};
use crate::CallContext;
use std::collections::BTreeMap;

struct Account {
    balance: u128,
    nonce: u64,
}

struct Deployed {
    contract: Box<dyn Contract>,
    storage: ContractStorage,
}

/// An in-process, deterministic blockchain with a single PoA sealer.
///
/// Transactions execute immediately into a pending block; [`Blockchain::seal_block`]
/// closes the pending block and opens the next (auto-sealing on every
/// transaction is what Ganache-style dev chains do and what the Slicer
/// protocol wiring uses).
pub struct Blockchain {
    schedule: GasSchedule,
    // Ordered maps keep account/contract iteration deterministic across
    // runs (det.hash_collection invariant).
    accounts: BTreeMap<Address, Account>,
    contracts: BTreeMap<Address, Deployed>,
    blocks: Vec<Block>,
    pending: Vec<TxReceipt>,
}

impl Default for Blockchain {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blockchain")
            .field("height", &self.height())
            .field("accounts", &self.accounts.len())
            .field("contracts", &self.contracts.len())
            .finish()
    }
}

impl Blockchain {
    /// A fresh chain containing only the genesis block.
    pub fn new() -> Self {
        Self::with_schedule(GasSchedule::default())
    }

    /// A fresh chain with a custom gas schedule.
    pub fn with_schedule(schedule: GasSchedule) -> Self {
        Blockchain {
            schedule,
            accounts: BTreeMap::new(),
            contracts: BTreeMap::new(),
            blocks: vec![Block::genesis()],
            pending: Vec::new(),
        }
    }

    /// The active gas schedule.
    pub fn schedule(&self) -> &GasSchedule {
        &self.schedule
    }

    /// Funds (or creates) an externally owned account.
    pub fn create_account(&mut self, addr: Address, balance: u128) {
        self.accounts
            .entry(addr)
            .or_insert(Account {
                balance: 0,
                nonce: 0,
            })
            .balance += balance;
    }

    /// Balance of an account (zero if unknown).
    pub fn balance(&self, addr: &Address) -> u128 {
        self.accounts.get(addr).map_or(0, |a| a.balance)
    }

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.blocks.last().map_or(0, |b| b.number)
    }

    /// All sealed blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Verifies the whole hash chain (integrity check used in tests and by
    /// auditors).
    pub fn verify_chain(&self) -> bool {
        self.blocks.windows(2).all(|w| match w {
            [parent, child] => child.verify_link(parent),
            _ => true,
        })
    }

    /// Reads a raw storage slot of a deployed contract (a public-state
    /// query, like `eth_getStorageAt`).
    pub fn storage_at(&self, contract: &Address, key: &[u8]) -> Option<Vec<u8>> {
        self.contracts
            .get(contract)
            .and_then(|d| d.storage.get(key).cloned())
    }

    /// All events with the given topic across sealed blocks (an
    /// `eth_getLogs`-style filter) — how third parties audit settlement
    /// outcomes.
    pub fn logs_by_topic(&self, topic: &str) -> Vec<&crate::tx::LogEvent> {
        self.blocks
            .iter()
            .flat_map(|b| &b.receipts)
            .flat_map(|r| &r.logs)
            .filter(|l| l.topic == topic)
            .collect()
    }

    /// Deploys a native contract, charging deployment gas to `from`.
    ///
    /// # Errors
    ///
    /// Fails if the deployer is unknown or cannot cover `value`.
    pub fn deploy_contract(
        &mut self,
        from: Address,
        contract: Box<dyn Contract>,
        value: u128,
    ) -> Result<DeployOutcome, ChainError> {
        let mut span = slicer_telemetry::global::span("chain.deploy");
        let nonce = {
            let acct = self
                .accounts
                .get_mut(&from)
                .ok_or(ChainError::UnknownAccount(from))?;
            if acct.balance < value {
                return Err(ChainError::InsufficientBalance {
                    account: from,
                    have: acct.balance,
                    need: value,
                });
            }
            acct.balance -= value;
            let n = acct.nonce;
            acct.nonce += 1;
            n
        };
        let code = contract.code();
        let mut gas_breakdown = GasBreakdown::default();
        gas_breakdown.add(
            GasCategory::Intrinsic,
            self.schedule.tx_base + self.schedule.tx_create + self.schedule.calldata_cost(&code),
        );
        gas_breakdown.add(
            GasCategory::CodeDeposit,
            self.schedule.code_deposit * code.len() as u64,
        );
        let gas_used = gas_breakdown.total();
        let address = Address::for_contract(&from, nonce);
        self.contracts.insert(
            address,
            Deployed {
                contract,
                storage: ContractStorage::new(),
            },
        );
        // Contracts hold escrowed value in an account of their own.
        self.create_account(address, value);

        let tx_hash = H256::of(&[from.0.as_slice(), &nonce.to_be_bytes(), &code].concat());
        let receipt = TxReceipt {
            tx_hash,
            block_number: self.height() + 1,
            gas_used,
            status: TxStatus::Succeeded,
            output: address.0.to_vec(),
            logs: Vec::new(),
            gas_breakdown,
        };
        if span.is_recording() {
            span.attr("gas.used", gas_used);
            span.attr("tx.hash", tx_hash.to_string());
        }
        self.pending.push(receipt.clone());
        Ok(DeployOutcome {
            address,
            gas_used,
            receipt,
        })
    }

    /// Executes a transaction against a deployed contract.
    ///
    /// Contract storage is mutated only if the call succeeds; on revert the
    /// attached value is refunded to the sender. Gas is consumed either way
    /// (as on Ethereum).
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] for malformed transactions (unknown sender,
    /// unknown contract, insufficient balance or gas limit below the
    /// intrinsic cost). Contract-level failures are reported in the receipt
    /// status, not as errors.
    pub fn send_transaction(&mut self, tx: Transaction) -> Result<TxReceipt, ChainError> {
        let mut span = slicer_telemetry::global::span("chain.tx");
        let intrinsic =
            self.schedule.tx_base + self.schedule.calldata_cost(&tx.data) + self.schedule.call_base;
        if tx.gas_limit < intrinsic {
            return Err(ChainError::IntrinsicGasTooLow {
                limit: tx.gas_limit,
                needed: intrinsic,
            });
        }
        if !self.contracts.contains_key(&tx.to) {
            return Err(ChainError::UnknownContract(tx.to));
        }
        let mut meter = GasMeter::new(tx.gas_limit);
        if meter.charge(intrinsic).is_err() {
            return Err(ChainError::IntrinsicGasTooLow {
                limit: tx.gas_limit,
                needed: intrinsic,
            });
        }
        let nonce = {
            let acct = self
                .accounts
                .get_mut(&tx.from)
                .ok_or(ChainError::UnknownAccount(tx.from))?;
            if acct.balance < tx.value {
                return Err(ChainError::InsufficientBalance {
                    account: tx.from,
                    have: acct.balance,
                    need: tx.value,
                });
            }
            acct.balance -= tx.value;
            let n = acct.nonce;
            acct.nonce += 1;
            n
        };

        let mut gas_breakdown = GasBreakdown::default();
        gas_breakdown.add(GasCategory::Intrinsic, intrinsic);

        // Execute against a copy of storage so reverts roll back cleanly.
        let mut storage = self
            .contracts
            .get(&tx.to)
            .map(|d| d.storage.clone())
            .unwrap_or_default();
        let mut payouts: Vec<(Address, u128)> = Vec::new();
        let mut logs: Vec<crate::tx::LogEvent> = Vec::new();
        let result = match self.contracts.get(&tx.to) {
            Some(deployed) => {
                let mut ctx = CallContext {
                    caller: tx.from,
                    value: tx.value,
                    this: tx.to,
                    storage: &mut storage,
                    meter: &mut meter,
                    schedule: &self.schedule,
                    payouts: &mut payouts,
                    logs: &mut logs,
                    breakdown: &mut gas_breakdown,
                };
                deployed.contract.execute(&mut ctx, &tx.data)
            }
            None => return Err(ChainError::UnknownContract(tx.to)),
        };

        // Settlement safety: a contract that queues payouts beyond its
        // escrow reverts as a whole instead of settling partially (or
        // crashing the runtime, as the old assert! did).
        let result = result.and_then(|out| {
            let escrow = self.balance(&tx.to).saturating_add(tx.value);
            let total = payouts
                .iter()
                .fold(0u128, |acc, (_, amount)| acc.saturating_add(*amount));
            if total > escrow {
                Err(crate::error::ContractError::EscrowOverdraw {
                    have: escrow,
                    need: total,
                })
            } else {
                Ok(out)
            }
        });

        let (status, output) = match result {
            Ok(out) => {
                if let Some(deployed) = self.contracts.get_mut(&tx.to) {
                    deployed.storage = storage;
                }
                // Value moves into the contract's escrow account, then
                // queued payouts (validated against escrow above) apply.
                self.create_account(tx.to, tx.value);
                for (to, amount) in payouts {
                    if let Some(contract_acct) = self.accounts.get_mut(&tx.to) {
                        contract_acct.balance = contract_acct.balance.saturating_sub(amount);
                    }
                    self.create_account(to, amount);
                }
                (TxStatus::Succeeded, out)
            }
            Err(e) => {
                // Revert: refund the value, keep the gas, drop the logs.
                logs.clear();
                self.create_account(tx.from, tx.value);
                (TxStatus::Reverted(e.to_string()), Vec::new())
            }
        };

        let receipt = TxReceipt {
            tx_hash: tx.hash(nonce),
            block_number: self.height() + 1,
            gas_used: meter.used(),
            status,
            output,
            logs,
            gas_breakdown,
        };
        if span.is_recording() {
            span.attr("gas.used", receipt.gas_used);
            span.attr("gas.category", dominant_category(&receipt.gas_breakdown));
            span.attr("tx.hash", receipt.tx_hash.to_string());
            span.attr("status", receipt.status.is_success());
        }
        self.pending.push(receipt.clone());
        Ok(receipt)
    }

    /// Seals the pending block (PoA: the single sealer signs by fiat).
    pub fn seal_block(&mut self) {
        let mut span = slicer_telemetry::global::span("chain.seal");
        let receipts = std::mem::take(&mut self.pending);
        if span.is_recording() {
            span.attr("block", self.height() + 1);
            span.attr("txs", receipts.len());
        }
        let block = match self.blocks.last() {
            Some(parent) => Block::seal(parent, receipts),
            None => Block::genesis(),
        };
        self.blocks.push(block);
    }
}

/// The gas-breakdown bucket with the largest charge — the one-word answer
/// to "where did this transaction's gas go".
fn dominant_category(breakdown: &GasBreakdown) -> &'static str {
    breakdown
        .entries()
        .iter()
        .max_by_key(|(_, gas)| *gas)
        .map_or("other", |(name, _)| name)
}

/// Result of a contract deployment.
#[derive(Debug, Clone)]
pub struct DeployOutcome {
    /// Address of the new contract.
    pub address: Address,
    /// Gas consumed by the deployment.
    pub gas_used: u64,
    /// Full receipt.
    pub receipt: TxReceipt,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::testing::Counter;

    fn setup() -> (Blockchain, Address, Address) {
        let mut chain = Blockchain::new();
        let user = Address::from_byte(1);
        chain.create_account(user, 1_000_000);
        let out = chain.deploy_contract(user, Box::new(Counter), 0).unwrap();
        (chain, user, out.address)
    }

    #[test]
    fn deploy_charges_code_deposit() {
        let (chain, _, _) = setup();
        let r = &chain.blocks[0]; // pending not sealed yet; check via receipt
        let _ = r;
        // 100 bytes of 0xC0 code: 21000 + 32000 + 100*16 + 100*200 = 74 600.
        let mut chain2 = Blockchain::new();
        let u = Address::from_byte(2);
        chain2.create_account(u, 0);
        let out = chain2.deploy_contract(u, Box::new(Counter), 0).unwrap();
        assert_eq!(out.gas_used, 21_000 + 32_000 + 1_600 + 20_000);
    }

    #[test]
    fn call_mutates_storage_and_returns_output() {
        let (mut chain, user, addr) = setup();
        let r1 = chain
            .send_transaction(Transaction::call(user, addr, 0, vec![0x01]))
            .unwrap();
        assert!(r1.status.is_success());
        assert_eq!(r1.output, 1u64.to_be_bytes());
        let r2 = chain
            .send_transaction(Transaction::call(user, addr, 0, vec![0x01]))
            .unwrap();
        assert_eq!(r2.output, 2u64.to_be_bytes());
        assert_eq!(
            chain.storage_at(&addr, b"count"),
            Some(2u64.to_be_bytes().to_vec())
        );
    }

    #[test]
    fn revert_rolls_back_storage_and_refunds_value() {
        let (mut chain, user, addr) = setup();
        chain
            .send_transaction(Transaction::call(user, addr, 0, vec![0x01]))
            .unwrap();
        let before = chain.balance(&user);
        let r = chain
            .send_transaction(Transaction::call(user, addr, 500, vec![0x02]))
            .unwrap();
        assert!(!r.status.is_success());
        assert_eq!(chain.balance(&user), before, "value refunded");
        assert_eq!(
            chain.storage_at(&addr, b"count"),
            Some(1u64.to_be_bytes().to_vec()),
            "counter unchanged by reverted call"
        );
    }

    #[test]
    fn unknown_contract_rejected() {
        let (mut chain, user, _) = setup();
        let err = chain
            .send_transaction(Transaction::call(user, Address::from_byte(0xEE), 0, vec![]))
            .unwrap_err();
        assert!(matches!(err, ChainError::UnknownContract(_)));
    }

    #[test]
    fn insufficient_balance_rejected() {
        let (mut chain, user, addr) = setup();
        let err = chain
            .send_transaction(Transaction::call(user, addr, u128::MAX, vec![0x01]))
            .unwrap_err();
        assert!(matches!(err, ChainError::InsufficientBalance { .. }));
    }

    #[test]
    fn gas_limit_enforced() {
        let (mut chain, user, addr) = setup();
        let mut tx = Transaction::call(user, addr, 0, vec![0x01]);
        tx.gas_limit = 22_000; // covers intrinsic but not sload + sstore
        let r = chain.send_transaction(tx).unwrap();
        assert!(matches!(r.status, TxStatus::Reverted(ref s) if s.contains("out of gas")));
    }

    #[test]
    fn events_survive_success_and_die_on_revert() {
        use crate::{SlicerCall, SlicerContract};
        let mut chain = Blockchain::new();
        let owner = Address::from_byte(9);
        chain.create_account(owner, 1_000);
        let out = chain
            .deploy_contract(
                owner,
                Box::new(SlicerContract::new(
                    slicer_accumulator::RsaParams::fixed_512(),
                    128,
                    owner,
                )),
                0,
            )
            .unwrap();
        // Success path emits AccumulatorUpdated.
        let call = SlicerCall::SetAccumulator(vec![1u8; 64]);
        let r = chain
            .send_transaction(Transaction::call(owner, out.address, 0, call.encode()))
            .unwrap();
        assert_eq!(r.logs.len(), 1);
        assert_eq!(r.logs[0].topic, "AccumulatorUpdated");
        assert_eq!(r.logs[0].address, out.address);
        // Unauthorized caller reverts with no logs.
        let stranger = Address::from_byte(8);
        chain.create_account(stranger, 1_000);
        let call = SlicerCall::SetAccumulator(vec![2u8; 64]);
        let r = chain
            .send_transaction(Transaction::call(stranger, out.address, 0, call.encode()))
            .unwrap();
        assert!(!r.status.is_success());
        assert!(r.logs.is_empty(), "reverted calls emit nothing");
    }

    #[test]
    fn breakdown_reconciles_with_gas_used() {
        let (mut chain, user, addr) = setup();
        let r = chain
            .send_transaction(Transaction::call(user, addr, 0, vec![0x01]))
            .unwrap();
        assert_eq!(r.gas_breakdown.total(), r.gas_used);
        assert!(r.gas_breakdown.intrinsic >= 21_000);
        assert_eq!(r.gas_breakdown.sload, 800);
        assert_eq!(r.gas_breakdown.sstore, 20_000);

        // Out-of-gas abort: the truncated charge still reconciles.
        let mut tx = Transaction::call(user, addr, 0, vec![0x01]);
        tx.gas_limit = 22_000;
        let r = chain.send_transaction(tx).unwrap();
        assert!(!r.status.is_success());
        assert_eq!(r.gas_breakdown.total(), r.gas_used);
        assert_eq!(r.gas_used, 22_000);
    }

    #[test]
    fn deploy_breakdown_reconciles() {
        let mut chain = Blockchain::new();
        let u = Address::from_byte(3);
        chain.create_account(u, 0);
        let out = chain.deploy_contract(u, Box::new(Counter), 0).unwrap();
        assert_eq!(out.receipt.gas_breakdown.total(), out.gas_used);
        assert_eq!(out.receipt.gas_breakdown.code_deposit, 20_000);
    }

    #[test]
    fn blocks_seal_and_chain_verifies() {
        let (mut chain, user, addr) = setup();
        chain
            .send_transaction(Transaction::call(user, addr, 0, vec![0x01]))
            .unwrap();
        chain.seal_block();
        chain
            .send_transaction(Transaction::call(user, addr, 0, vec![0x01]))
            .unwrap();
        chain.seal_block();
        assert_eq!(chain.height(), 2);
        assert!(chain.verify_chain());
        assert_eq!(chain.blocks()[1].receipts.len(), 2); // deploy + call
    }
}
