//! Chain-level and contract-level errors.

use crate::types::Address;
use std::error::Error;
use std::fmt;

/// Errors raised while executing inside a contract.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ContractError {
    /// The call exhausted its gas limit.
    OutOfGas,
    /// The contract reverted with a reason string.
    Reverted(String),
    /// Malformed calldata.
    BadCalldata(String),
    /// The caller is not authorized for this method.
    Unauthorized,
    /// The contract queued payouts exceeding its escrowed balance. The
    /// transaction reverts instead of the runtime panicking: a malformed
    /// contract must never take the settlement layer down (fair payment is
    /// an availability property, Section IV-B).
    EscrowOverdraw {
        /// Escrow available to the contract (incl. the attached value).
        have: u128,
        /// Total payout the contract attempted.
        need: u128,
    },
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::OutOfGas => write!(f, "out of gas"),
            ContractError::Reverted(r) => write!(f, "reverted: {r}"),
            ContractError::BadCalldata(r) => write!(f, "malformed calldata: {r}"),
            ContractError::Unauthorized => write!(f, "caller not authorized"),
            ContractError::EscrowOverdraw { have, need } => {
                write!(f, "contract escrow {have} cannot cover payouts of {need}")
            }
        }
    }
}

impl Error for ContractError {}

/// Errors raised by the blockchain runtime itself.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainError {
    /// The sender account does not exist.
    UnknownAccount(Address),
    /// The sender cannot cover the transaction value.
    InsufficientBalance {
        /// Offending account.
        account: Address,
        /// Balance available.
        have: u128,
        /// Value required.
        need: u128,
    },
    /// The call target is not a deployed contract.
    UnknownContract(Address),
    /// The gas limit does not cover even the intrinsic transaction cost.
    IntrinsicGasTooLow {
        /// Supplied limit.
        limit: u64,
        /// Required intrinsic gas.
        needed: u64,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownAccount(a) => write!(f, "unknown account {a}"),
            ChainError::InsufficientBalance {
                account,
                have,
                need,
            } => {
                write!(f, "account {account} holds {have} but needs {need}")
            }
            ChainError::UnknownContract(a) => write!(f, "no contract deployed at {a}"),
            ChainError::IntrinsicGasTooLow { limit, needed } => {
                write!(f, "gas limit {limit} below intrinsic cost {needed}")
            }
        }
    }
}

impl Error for ChainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(ContractError::OutOfGas.to_string(), "out of gas");
        let e = ChainError::InsufficientBalance {
            account: Address::from_byte(1),
            have: 5,
            need: 10,
        };
        assert!(e.to_string().contains("needs 10"));
    }
}
