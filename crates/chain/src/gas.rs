//! Gas schedule and metering (EVM Yellow-Paper flavoured).

use crate::error::ContractError;

/// Gas cost constants. Values follow the Ethereum mainline schedule at the
/// time of the paper's Rinkeby evaluation (Istanbul/Berlin era), with
/// EIP-198 pricing for the MODEXP precompile — the combination that places
/// result verification near the paper's 94 531 gas.
#[derive(Debug, Clone)]
pub struct GasSchedule {
    /// Intrinsic cost of any transaction.
    pub tx_base: u64,
    /// Additional intrinsic cost of a contract-creating transaction.
    pub tx_create: u64,
    /// Per zero byte of calldata.
    pub calldata_zero: u64,
    /// Per nonzero byte of calldata.
    pub calldata_nonzero: u64,
    /// Per byte of deployed contract code.
    pub code_deposit: u64,
    /// Storage write: zero → nonzero slot.
    pub sstore_set: u64,
    /// Storage write: nonzero → nonzero slot.
    pub sstore_reset: u64,
    /// Storage read.
    pub sload: u64,
    /// Base cost of a hash invocation.
    pub hash_base: u64,
    /// Per 32-byte word hashed.
    pub hash_word: u64,
    /// Base cost of a wide-field (1024-bit) modular multiplication, as used
    /// by the multiset-hash precompile analogue.
    pub field_mul: u64,
    /// Trial-division filter cost per `H_prime` candidate examined.
    pub hprime_candidate: u64,
    /// Cost of one Miller–Rabin round on a prime-representative candidate
    /// (a small MODEXP under EIP-198).
    pub miller_rabin_round: u64,
    /// Cost of a balance transfer performed by a contract.
    pub call_value_transfer: u64,
    /// Flat overhead of dispatching into a contract.
    pub call_base: u64,
    /// Whether MODEXP uses the EIP-2565 (Berlin) repricing instead of
    /// EIP-198.
    pub modexp_berlin: bool,
}

slicer_crypto::impl_codec!(GasSchedule {
    tx_base,
    tx_create,
    calldata_zero,
    calldata_nonzero,
    code_deposit,
    sstore_set,
    sstore_reset,
    sload,
    hash_base,
    hash_word,
    field_mul,
    hprime_candidate,
    miller_rabin_round,
    call_value_transfer,
    call_base,
    modexp_berlin,
});

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule {
            tx_base: 21_000,
            tx_create: 32_000,
            calldata_zero: 4,
            calldata_nonzero: 16,
            code_deposit: 200,
            sstore_set: 20_000,
            sstore_reset: 5_000,
            sload: 800,
            hash_base: 30,
            hash_word: 6,
            field_mul: 480,
            hprime_candidate: 300,
            // EIP-198 on a 16-byte base/modulus with a ~127-bit exponent:
            // (16/8 words → x = 16 bytes → x^2/? ) ≈ 256 * 127 / 20.
            miller_rabin_round: 1_625,
            call_value_transfer: 9_000,
            call_base: 700,
            modexp_berlin: false,
        }
    }
}

impl GasSchedule {
    /// Intrinsic calldata cost of a payload.
    pub fn calldata_cost(&self, data: &[u8]) -> u64 {
        data.iter()
            .map(|&b| {
                if b == 0 {
                    self.calldata_zero
                } else {
                    self.calldata_nonzero
                }
            })
            .sum()
    }

    /// Hashing cost for `len` bytes of input.
    pub fn hash_cost(&self, len: usize) -> u64 {
        self.hash_base + self.hash_word * (len as u64).div_ceil(32)
    }
}

/// EIP-198 MODEXP precompile pricing: `floor(mult_complexity(x) * adj_exp / 20)`
/// where `x = max(base_len, mod_len)` in bytes and `adj_exp` approximates
/// the exponent bit length.
pub fn modexp_gas_eip198(base_len: usize, exp_bits: u64, mod_len: usize) -> u64 {
    let x = base_len.max(mod_len) as u64;
    let mult = if x <= 64 {
        x * x
    } else if x <= 1024 {
        x * x / 4 + 96 * x - 3_072
    } else {
        x * x / 16 + 480 * x - 199_680
    };
    let adj_exp = exp_bits.saturating_sub(1).max(1);
    (mult * adj_exp / 20).max(200)
}

/// EIP-2565 (Berlin repricing) MODEXP gas:
/// `max(200, mult_complexity * iteration_count / 3)` with
/// `mult_complexity = ceil(max(base_len, mod_len) / 8)^2`.
///
/// Dramatically cheaper than EIP-198 for the accumulator's operand sizes —
/// the gas-model ablation in `EXPERIMENTS.md` quantifies the gap. The
/// default schedule keeps EIP-198, which matches the paper's reported
/// verification cost.
pub fn modexp_gas_eip2565(base_len: usize, exp_bits: u64, mod_len: usize) -> u64 {
    let words = (base_len.max(mod_len) as u64).div_ceil(8);
    let mult = words * words;
    let iter = exp_bits.saturating_sub(1).max(1);
    (mult * iter / 3).max(200)
}

impl GasSchedule {
    /// A Berlin-era variant of the default schedule: EIP-2565 MODEXP
    /// pricing for the verification exponentiation and correspondingly
    /// cheaper Miller–Rabin rounds.
    pub fn eip2565() -> Self {
        GasSchedule {
            // 16-byte base/modulus, ~127-bit exponent under EIP-2565:
            // ceil(16/8)^2 * 126 / 3 = 168 → floored at 200.
            miller_rabin_round: 200,
            modexp_berlin: true,
            ..GasSchedule::default()
        }
    }

    /// MODEXP pricing under the schedule's active rule set.
    pub fn modexp_cost(&self, base_len: usize, exp_bits: u64, mod_len: usize) -> u64 {
        if self.modexp_berlin {
            modexp_gas_eip2565(base_len, exp_bits, mod_len)
        } else {
            modexp_gas_eip198(base_len, exp_bits, mod_len)
        }
    }
}

/// Converts a gas amount to US dollars at a given gas price and ETH price
/// (the paper quotes ≈ $0.28 for 94 531 gas with ETH at $3 000, i.e. a
/// 1 gwei gas price).
///
/// ```
/// use slicer_chain::gas_to_usd;
/// let usd = gas_to_usd(94_531, 1.0, 3_000.0);
/// assert!((usd - 0.28).abs() < 0.01);
/// ```
pub fn gas_to_usd(gas: u64, gas_price_gwei: f64, eth_usd: f64) -> f64 {
    gas as f64 * gas_price_gwei * 1e-9 * eth_usd
}

/// Attribution category for a gas charge — the telemetry-facing view of
/// [`GasSchedule`]: each variant names the schedule field(s) whose charges
/// it accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GasCategory {
    /// Transaction-intrinsic gas (`tx_base` + `tx_create` + calldata +
    /// `call_base`).
    Intrinsic,
    /// Deployment code deposit (`code_deposit` per byte).
    CodeDeposit,
    /// Storage reads (`sload`).
    Sload,
    /// Storage writes (`sstore_set` / `sstore_reset`).
    Sstore,
    /// Hash invocations (`hash_base` + `hash_word`).
    Hash,
    /// Wide-field multiplications of the multiset hash (`field_mul`).
    FieldMul,
    /// `H_prime` trial-division walk (`hprime_candidate`).
    HPrime,
    /// Miller–Rabin rounds (`miller_rabin_round`).
    MillerRabin,
    /// The accumulator verification MODEXP (EIP-198 / EIP-2565).
    Modexp,
    /// Settlement balance transfers (`call_value_transfer`).
    Transfer,
    /// Event emission (LOG-flavoured pricing).
    Event,
    /// Charges with no finer attribution.
    Other,
}

/// Gas consumed by one transaction, attributed per [`GasCategory`].
///
/// Maintained by the chain runtime so that `total()` equals the receipt's
/// `gas_used` exactly — including out-of-gas aborts, where the failing
/// charge is recorded at its truncated (meter-saturating) amount.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GasBreakdown {
    /// Gas attributed to [`GasCategory::Intrinsic`].
    pub intrinsic: u64,
    /// Gas attributed to [`GasCategory::CodeDeposit`].
    pub code_deposit: u64,
    /// Gas attributed to [`GasCategory::Sload`].
    pub sload: u64,
    /// Gas attributed to [`GasCategory::Sstore`].
    pub sstore: u64,
    /// Gas attributed to [`GasCategory::Hash`].
    pub hash: u64,
    /// Gas attributed to [`GasCategory::FieldMul`].
    pub field_mul: u64,
    /// Gas attributed to [`GasCategory::HPrime`].
    pub hprime: u64,
    /// Gas attributed to [`GasCategory::MillerRabin`].
    pub miller_rabin: u64,
    /// Gas attributed to [`GasCategory::Modexp`].
    pub modexp: u64,
    /// Gas attributed to [`GasCategory::Transfer`].
    pub transfer: u64,
    /// Gas attributed to [`GasCategory::Event`].
    pub event: u64,
    /// Gas attributed to [`GasCategory::Other`].
    pub other: u64,
}

slicer_crypto::impl_codec!(GasBreakdown {
    intrinsic,
    code_deposit,
    sload,
    sstore,
    hash,
    field_mul,
    hprime,
    miller_rabin,
    modexp,
    transfer,
    event,
    other,
});

impl GasBreakdown {
    /// Adds `gas` to the bucket for `category`.
    pub fn add(&mut self, category: GasCategory, gas: u64) {
        *self.slot(category) += gas;
    }

    /// Gas recorded for `category`.
    pub fn get(&self, category: GasCategory) -> u64 {
        match category {
            GasCategory::Intrinsic => self.intrinsic,
            GasCategory::CodeDeposit => self.code_deposit,
            GasCategory::Sload => self.sload,
            GasCategory::Sstore => self.sstore,
            GasCategory::Hash => self.hash,
            GasCategory::FieldMul => self.field_mul,
            GasCategory::HPrime => self.hprime,
            GasCategory::MillerRabin => self.miller_rabin,
            GasCategory::Modexp => self.modexp,
            GasCategory::Transfer => self.transfer,
            GasCategory::Event => self.event,
            GasCategory::Other => self.other,
        }
    }

    fn slot(&mut self, category: GasCategory) -> &mut u64 {
        match category {
            GasCategory::Intrinsic => &mut self.intrinsic,
            GasCategory::CodeDeposit => &mut self.code_deposit,
            GasCategory::Sload => &mut self.sload,
            GasCategory::Sstore => &mut self.sstore,
            GasCategory::Hash => &mut self.hash,
            GasCategory::FieldMul => &mut self.field_mul,
            GasCategory::HPrime => &mut self.hprime,
            GasCategory::MillerRabin => &mut self.miller_rabin,
            GasCategory::Modexp => &mut self.modexp,
            GasCategory::Transfer => &mut self.transfer,
            GasCategory::Event => &mut self.event,
            GasCategory::Other => &mut self.other,
        }
    }

    /// Sum over every category; equals the receipt's `gas_used`.
    pub fn total(&self) -> u64 {
        self.entries().iter().map(|(_, g)| g).sum()
    }

    /// Accumulates another breakdown into this one (for aggregating the
    /// several transactions of one protocol run).
    pub fn merge(&mut self, other: &GasBreakdown) {
        for (name, gas) in other.entries() {
            self.add(Self::category_by_name(name), gas);
        }
    }

    /// All `(category_name, gas)` pairs in declaration order, including
    /// zero entries.
    pub fn entries(&self) -> [(&'static str, u64); 12] {
        [
            ("intrinsic", self.intrinsic),
            ("code_deposit", self.code_deposit),
            ("sload", self.sload),
            ("sstore", self.sstore),
            ("hash", self.hash),
            ("field_mul", self.field_mul),
            ("hprime", self.hprime),
            ("miller_rabin", self.miller_rabin),
            ("modexp", self.modexp),
            ("transfer", self.transfer),
            ("event", self.event),
            ("other", self.other),
        ]
    }

    fn category_by_name(name: &str) -> GasCategory {
        match name {
            "intrinsic" => GasCategory::Intrinsic,
            "code_deposit" => GasCategory::CodeDeposit,
            "sload" => GasCategory::Sload,
            "sstore" => GasCategory::Sstore,
            "hash" => GasCategory::Hash,
            "field_mul" => GasCategory::FieldMul,
            "hprime" => GasCategory::HPrime,
            "miller_rabin" => GasCategory::MillerRabin,
            "modexp" => GasCategory::Modexp,
            "transfer" => GasCategory::Transfer,
            "event" => GasCategory::Event,
            _ => GasCategory::Other,
        }
    }
}

/// A per-call gas meter.
#[derive(Debug, Clone)]
pub struct GasMeter {
    limit: u64,
    used: u64,
}

impl GasMeter {
    /// Creates a meter with the given limit.
    pub fn new(limit: u64) -> Self {
        GasMeter { limit, used: 0 }
    }

    /// Charges `amount` gas.
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::OutOfGas`] once the limit is exceeded; the
    /// meter stays saturated at the limit.
    pub fn charge(&mut self, amount: u64) -> Result<(), ContractError> {
        self.used = self.used.saturating_add(amount);
        if self.used > self.limit {
            self.used = self.limit;
            Err(ContractError::OutOfGas)
        } else {
            Ok(())
        }
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Remaining budget.
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calldata_distinguishes_zero_bytes() {
        let s = GasSchedule::default();
        assert_eq!(s.calldata_cost(&[0, 0]), 8);
        assert_eq!(s.calldata_cost(&[1, 2]), 32);
    }

    #[test]
    fn modexp_pricing_matches_known_points() {
        // 64-byte base/mod, 127-bit exponent: 4096 * 126 / 20 = 25 804.
        assert_eq!(modexp_gas_eip198(64, 127, 64), 25_804);
        // Tiny operations floor at 200.
        assert_eq!(modexp_gas_eip198(1, 2, 1), 200);
    }

    #[test]
    fn berlin_repricing_is_cheaper_for_accumulator_ops() {
        // 64-byte operands, 127-bit exponent: 8^2 * 126 / 3 = 2 688.
        assert_eq!(modexp_gas_eip2565(64, 127, 64), 2_688);
        assert!(modexp_gas_eip2565(64, 127, 64) < modexp_gas_eip198(64, 127, 64));
        assert_eq!(modexp_gas_eip2565(1, 2, 1), 200);
    }

    #[test]
    fn schedule_dispatches_modexp_rule() {
        let legacy = GasSchedule::default();
        let berlin = GasSchedule::eip2565();
        assert_eq!(legacy.modexp_cost(64, 127, 64), 25_804);
        assert_eq!(berlin.modexp_cost(64, 127, 64), 2_688);
        assert!(berlin.miller_rabin_round < legacy.miller_rabin_round);
    }

    #[test]
    fn meter_enforces_limit() {
        let mut m = GasMeter::new(100);
        assert!(m.charge(60).is_ok());
        assert_eq!(m.remaining(), 40);
        assert!(matches!(m.charge(50), Err(ContractError::OutOfGas)));
        assert_eq!(m.used(), 100);
    }

    #[test]
    fn breakdown_totals_and_merges() {
        let mut a = GasBreakdown::default();
        a.add(GasCategory::Intrinsic, 21_000);
        a.add(GasCategory::Sstore, 20_000);
        a.add(GasCategory::Sstore, 5_000);
        assert_eq!(a.get(GasCategory::Sstore), 25_000);
        assert_eq!(a.total(), 46_000);

        let mut b = GasBreakdown::default();
        b.add(GasCategory::Modexp, 200);
        b.merge(&a);
        assert_eq!(b.total(), 46_200);
        assert_eq!(b.get(GasCategory::Intrinsic), 21_000);

        let names: Vec<&str> = a.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 12);
        assert!(names.contains(&"miller_rabin"));
    }

    #[test]
    fn hash_cost_rounds_words_up() {
        let s = GasSchedule::default();
        assert_eq!(s.hash_cost(33), 30 + 12);
        assert_eq!(s.hash_cost(0), 30);
    }
}
