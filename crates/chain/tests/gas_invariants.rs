//! Structural gas invariants behind Table II's claims.

use slicer_chain::{
    Address, Blockchain, SlicerCall, SlicerContract, TokenOnChain, Transaction, VerifyEntry,
};

fn setup() -> (Blockchain, Address, Address, Address) {
    let mut chain = Blockchain::new();
    let owner = Address::from_byte(1);
    let cloud = Address::from_byte(2);
    chain.create_account(owner, 1_000_000_000);
    chain.create_account(cloud, 1_000_000_000);
    let out = chain
        .deploy_contract(
            owner,
            Box::new(SlicerContract::new(
                slicer_accumulator::RsaParams::fixed_512(),
                128,
                owner,
            )),
            0,
        )
        .unwrap();
    (chain, owner, cloud, out.address)
}

fn set_ac(chain: &mut Blockchain, owner: Address, contract: Address, byte: u8) -> u64 {
    let r = chain
        .send_transaction(Transaction::call(
            owner,
            contract,
            0,
            SlicerCall::SetAccumulator(vec![byte; 64]).encode(),
        ))
        .unwrap();
    assert!(r.status.is_success());
    r.gas_used
}

#[test]
fn insertion_gas_is_constant_per_digest_update() {
    // Paper: "It only costs 29,144 gas per time regardless of the amount
    // of items to insert." The very first write pays the fresh-slot
    // SSTORE_SET premium; every subsequent update costs the same reset
    // price.
    let (mut chain, owner, _, contract) = setup();
    let first = set_ac(&mut chain, owner, contract, 1);
    let second = set_ac(&mut chain, owner, contract, 2);
    assert!(first > second, "fresh slot costs more: {first} vs {second}");
    for i in 3..10u8 {
        let next = set_ac(&mut chain, owner, contract, i);
        assert_eq!(next, second, "update {i} drifted");
    }
}

#[test]
fn deployment_gas_is_deterministic() {
    let (chain_a, ..) = setup();
    let (chain_b, ..) = setup();
    let gas_a = chain_a.blocks().iter().flat_map(|b| &b.receipts).count();
    let _ = (gas_a, chain_b);
    // Two independent deployments of the same artifact cost the same.
    let mut c1 = Blockchain::new();
    let d = Address::from_byte(7);
    c1.create_account(d, 1);
    let g1 = c1
        .deploy_contract(d, Box::new(SlicerContract::fixed_512()), 0)
        .unwrap()
        .gas_used;
    let mut c2 = Blockchain::new();
    c2.create_account(d, 1);
    let g2 = c2
        .deploy_contract(d, Box::new(SlicerContract::fixed_512()), 0)
        .unwrap()
        .gas_used;
    assert_eq!(g1, g2);
}

#[test]
fn verification_gas_grows_with_result_count_via_calldata_and_hashing() {
    // The contract hashes every returned ciphertext: more results → more
    // gas, monotonically (calldata + multiset hashing are per-element).
    let (mut chain, owner, cloud, contract) = setup();
    set_ac(&mut chain, owner, contract, 1);

    // H_prime's hash-and-increment walk length varies per request (prime
    // gaps), adding ±tens-of-k gas of noise; compare far-apart result
    // counts so the per-element calldata + hashing cost dominates.
    let mut measured = Vec::new();
    for (i, n_er) in [1usize, 256].iter().enumerate() {
        let rid = [i as u8 + 10; 32];
        let token = TokenOnChain {
            trapdoor: vec![3u8; 64],
            j: 0,
            g1: [4; 32],
            g2: [5; 32],
        };
        chain
            .send_transaction(Transaction::call(
                owner,
                contract,
                0,
                SlicerCall::RequestSearch {
                    request_id: rid,
                    cloud,
                    tokens: vec![token],
                }
                .encode(),
            ))
            .unwrap();
        let entries = vec![VerifyEntry {
            token_idx: 0,
            er: (0..*n_er).map(|k| vec![k as u8; 32]).collect(),
            vo: vec![6u8; 64],
        }];
        let r = chain
            .send_transaction(Transaction::call(
                cloud,
                contract,
                0,
                SlicerCall::SubmitResult {
                    request_id: rid,
                    entries,
                }
                .encode(),
            ))
            .unwrap();
        assert!(r.status.is_success(), "fails verification but completes");
        assert_eq!(r.output, [0], "garbage vo never verifies");
        measured.push(r.gas_used);
    }
    assert!(
        measured[1] > measured[0] + 100_000,
        "256 results must dwarf 1 result: {measured:?}"
    );
}

#[test]
fn gas_is_consumed_even_on_revert() {
    let (mut chain, owner, _, contract) = setup();
    let r = chain
        .send_transaction(Transaction::call(owner, contract, 0, vec![0xFF]))
        .unwrap();
    assert!(!r.status.is_success());
    assert!(r.gas_used >= 21_000, "intrinsic gas always burns");
}

#[test]
fn eip2565_schedule_reduces_verification_cost() {
    // Same honest verification under both schedules.
    let run = |schedule: slicer_chain::GasSchedule| -> u64 {
        let mut chain = Blockchain::with_schedule(schedule);
        let owner = Address::from_byte(1);
        let cloud = Address::from_byte(2);
        chain.create_account(owner, 1_000_000_000);
        chain.create_account(cloud, 1_000_000_000);
        let contract = chain
            .deploy_contract(
                owner,
                Box::new(SlicerContract::new(
                    slicer_accumulator::RsaParams::fixed_512(),
                    128,
                    owner,
                )),
                0,
            )
            .unwrap()
            .address;
        set_ac(&mut chain, owner, contract, 1);
        let token = TokenOnChain {
            trapdoor: vec![3u8; 64],
            j: 0,
            g1: [4; 32],
            g2: [5; 32],
        };
        chain
            .send_transaction(Transaction::call(
                owner,
                contract,
                0,
                SlicerCall::RequestSearch {
                    request_id: [1; 32],
                    cloud,
                    tokens: vec![token],
                }
                .encode(),
            ))
            .unwrap();
        chain
            .send_transaction(Transaction::call(
                cloud,
                contract,
                0,
                SlicerCall::SubmitResult {
                    request_id: [1; 32],
                    entries: vec![VerifyEntry {
                        token_idx: 0,
                        er: vec![vec![9u8; 32]],
                        vo: vec![6u8; 64],
                    }],
                }
                .encode(),
            ))
            .unwrap()
            .gas_used
    };
    let legacy = run(slicer_chain::GasSchedule::default());
    let berlin = run(slicer_chain::GasSchedule::eip2565());
    assert!(
        berlin < legacy,
        "EIP-2565 must be cheaper: {berlin} vs {legacy}"
    );
}
