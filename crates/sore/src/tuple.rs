//! The bit-slice tuples `prefix ‖ bit ‖ op` underlying SORE.

use crate::order::Order;

/// One slice of a value: the tuple `(attr, i, v_{|i-1}, bit, op)`.
///
/// `i` is the 1-based bit index counted from the most significant bit of
/// the `b`-bit representation; `prefix` holds the `i-1` more-significant
/// bits. The canonical byte encoding ([`SliceTuple::encode`]) is what gets
/// fed to the PRF in the SORE scheme and used as the SSE keyword `w = ct_i`
/// in Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SliceTuple {
    /// Attribute name for multi-attribute records (empty for single-value
    /// databases) — the Section V-F extension `a‖v_{|i-1}‖v_i‖oc`.
    pub attr: Vec<u8>,
    /// 1-based bit index (determines the prefix length).
    pub index: u8,
    /// The `i-1` high bits of the value, right-aligned.
    pub prefix: u64,
    /// The slice bit (`v_i` in tokens, `v̄_i` in ciphertexts).
    pub bit: bool,
    /// The order symbol (`oc` in tokens, `cmp(v̄_i, v_i)` in ciphertexts).
    pub op: Order,
}

slicer_crypto::impl_codec!(SliceTuple {
    attr,
    index,
    prefix,
    bit,
    op,
});

impl SliceTuple {
    /// Canonical byte encoding: `attr_len ‖ attr ‖ i ‖ prefix ‖ bit ‖ op`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.attr.len() + 1 + 8 + 1 + 1);
        out.extend_from_slice(&(self.attr.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.attr);
        out.push(self.index);
        out.extend_from_slice(&self.prefix.to_be_bytes());
        out.push(self.bit as u8);
        out.push(self.op.to_byte());
        out
    }
}

/// Extracts bit `i` (1-based from the MSB of the `bits`-wide value).
pub(crate) fn bit_at(value: u64, bits: u8, i: u8) -> bool {
    debug_assert!(i >= 1 && i <= bits);
    (value >> (bits - i)) & 1 == 1
}

/// The `i-1`-bit prefix of the value (0 when `i == 1`).
pub(crate) fn prefix_at(value: u64, bits: u8, i: u8) -> u64 {
    debug_assert!(i >= 1 && i <= bits);
    if i == 1 {
        0
    } else {
        value >> (bits - i + 1)
    }
}

/// Builds the token tuples `tk_i = a‖v_{|i-1}‖v_i‖oc` for all `i ∈ [1, b]`.
pub fn token_tuples(attr: &[u8], value: u64, bits: u8, oc: Order) -> Vec<SliceTuple> {
    let mut span = slicer_telemetry::global::span("sore.tokens");
    span.attr("tuples", u64::from(bits));
    slicer_telemetry::global::count("sore.token_tuples", u64::from(bits));
    (1..=bits)
        .map(|i| SliceTuple {
            attr: attr.to_vec(),
            index: i,
            prefix: prefix_at(value, bits, i),
            bit: bit_at(value, bits, i),
            op: oc,
        })
        .collect()
}

/// Builds the ciphertext tuples `ct_i = a‖v_{|i-1}‖v̄_i‖cmp(v̄_i, v_i)`.
pub fn cipher_tuples(attr: &[u8], value: u64, bits: u8) -> Vec<SliceTuple> {
    slicer_telemetry::global::count("sore.cipher_tuples", u64::from(bits));
    (1..=bits)
        .map(|i| {
            let v_i = bit_at(value, bits, i);
            let flipped = !v_i;
            SliceTuple {
                attr: attr.to_vec(),
                index: i,
                prefix: prefix_at(value, bits, i),
                bit: flipped,
                op: Order::cmp_bits(flipped, v_i),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_indexing_is_msb_first() {
        // 5 = 0101 over 4 bits.
        assert!(!bit_at(5, 4, 1));
        assert!(bit_at(5, 4, 2));
        assert!(!bit_at(5, 4, 3));
        assert!(bit_at(5, 4, 4));
    }

    #[test]
    fn prefixes_accumulate() {
        // 5 = 0101: prefixes are ∅, 0, 01, 010.
        assert_eq!(prefix_at(5, 4, 1), 0);
        assert_eq!(prefix_at(5, 4, 2), 0b0);
        assert_eq!(prefix_at(5, 4, 3), 0b01);
        assert_eq!(prefix_at(5, 4, 4), 0b010);
    }

    #[test]
    fn paper_example_fig2_match() {
        // Fig. 2: token for x=6 (0110) with ">" matches ciphertext of
        // y=5 (0101) at exactly one index.
        let tks = token_tuples(b"", 6, 4, Order::Greater);
        let cts = cipher_tuples(b"", 5, 4);
        let tk_set: std::collections::HashSet<Vec<u8>> =
            tks.iter().map(SliceTuple::encode).collect();
        let common = cts.iter().filter(|c| tk_set.contains(&c.encode())).count();
        assert_eq!(common, 1);
    }

    #[test]
    fn paper_example_fig2_no_match() {
        // Token for x=4 (0100) with ">" must NOT match y=8 (1000): 4 > 8 is false.
        let tks = token_tuples(b"", 4, 4, Order::Greater);
        let cts = cipher_tuples(b"", 8, 4);
        let tk_set: std::collections::HashSet<Vec<u8>> =
            tks.iter().map(SliceTuple::encode).collect();
        assert_eq!(
            cts.iter().filter(|c| tk_set.contains(&c.encode())).count(),
            0
        );
    }

    #[test]
    fn attribute_separates_tuple_spaces() {
        let a = token_tuples(b"age", 6, 4, Order::Greater);
        let b = token_tuples(b"salary", 6, 4, Order::Greater);
        assert_ne!(a[0].encode(), b[0].encode());
    }

    #[test]
    fn encoding_is_injective_on_index() {
        // Same prefix value but different index must encode differently
        // (prefix length is part of tuple identity).
        let t1 = SliceTuple {
            attr: vec![],
            index: 2,
            prefix: 0,
            bit: true,
            op: Order::Greater,
        };
        let t2 = SliceTuple {
            index: 3,
            ..t1.clone()
        };
        assert_ne!(t1.encode(), t2.encode());
    }
}
