//! The order condition embedded in SORE tuples.

use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};
use std::fmt;

/// An order condition `oc ∈ {">", "<"}` in the paper's `x oc y` convention
/// (`x` = query value, `y` = data value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Order {
    /// `x > y`: matches data values *smaller* than the query value.
    Greater,
    /// `x < y`: matches data values *greater* than the query value.
    Less,
}

impl Encode for Order {
    fn encode(&self, out: &mut Vec<u8>) {
        let variant: u32 = match self {
            Order::Greater => 0,
            Order::Less => 1,
        };
        variant.encode(out);
    }
}

impl Decode for Order {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(reader)? {
            0 => Ok(Order::Greater),
            1 => Ok(Order::Less),
            v => Err(CodecError::msg(format!("invalid Order variant {v}"))),
        }
    }
}

impl Order {
    /// The comparison result `cmp(a, b)` between two differing bits, as an
    /// order symbol: `cmp(1, 0) = ">"`, `cmp(0, 1) = "<"`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (the construction only compares a bit with its
    /// complement).
    pub fn cmp_bits(a: bool, b: bool) -> Order {
        assert_ne!(a, b, "cmp is only defined on complementary bits");
        if a {
            Order::Greater
        } else {
            Order::Less
        }
    }

    /// Single-byte encoding used inside tuples.
    pub fn to_byte(self) -> u8 {
        match self {
            Order::Greater => b'>',
            Order::Less => b'<',
        }
    }

    /// The opposite condition.
    #[must_use]
    pub fn flip(self) -> Order {
        match self {
            Order::Greater => Order::Less,
            Order::Less => Order::Greater,
        }
    }

    /// Whether `x oc y` holds for concrete integers.
    pub fn holds(self, x: u64, y: u64) -> bool {
        match self {
            Order::Greater => x > y,
            Order::Less => x < y,
        }
    }
}

impl fmt::Display for Order {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Order::Greater => ">",
            Order::Less => "<",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_bits_convention() {
        assert_eq!(Order::cmp_bits(true, false), Order::Greater);
        assert_eq!(Order::cmp_bits(false, true), Order::Less);
    }

    #[test]
    #[should_panic(expected = "complementary")]
    fn cmp_equal_bits_panics() {
        Order::cmp_bits(true, true);
    }

    #[test]
    fn flip_is_involution() {
        assert_eq!(Order::Greater.flip().flip(), Order::Greater);
        assert_ne!(Order::Less.flip(), Order::Less);
    }

    #[test]
    fn holds_semantics() {
        assert!(Order::Greater.holds(6, 5));
        assert!(!Order::Greater.holds(5, 5));
        assert!(Order::Less.holds(4, 5));
    }
}
