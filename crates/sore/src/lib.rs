//! # slicer-sore
//!
//! The **Succinct Order-Revealing Encryption** scheme at the heart of
//! Slicer (Section V-B), plus two classic ORE baselines used for ablation.
//!
//! SORE "slices" an order condition over a `b`-bit value into `b` prefix
//! tuples. A query token for `x` under order condition `oc` carries, per
//! bit `i`, the tuple `x_{|i-1} ‖ x_i ‖ oc`; a ciphertext for `y` carries
//! `y_{|i-1} ‖ ȳ_i ‖ cmp(ȳ_i, y_i)`. Theorem 1: `x oc y` holds **iff** the
//! two (PRF-masked, shuffled) tuple sets share *exactly one* element —
//! which reduces order comparison to keyword-equality matching, exactly
//! what a keyword SSE index can serve.
//!
//! Semantics note: tokens follow the paper's convention `x oc y` where `x`
//! is the *query* value and `y` the *data* value. A user searching for
//! records **less than** 100 therefore issues `Token(100, Greater)`. The
//! higher-level `slicer-core` crate exposes the intuitive
//! `less_than`/`greater_than` API and performs this flip.
//!
//! # Examples
//!
//! ```
//! use slicer_sore::{Order, SoreScheme};
//! use slicer_crypto::HmacDrbg;
//!
//! let sore = SoreScheme::new(b"prf key", 8);
//! let mut rng = HmacDrbg::from_u64(7);
//! let ct = sore.encrypt(5, &mut rng);       // data value 5
//! let tk = sore.token(6, Order::Greater, &mut rng); // query: 6 > y ?
//! assert!(SoreScheme::compare(&ct, &tk));   // 6 > 5 ✓
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod order;
mod scheme;
mod tuple;

pub use order::Order;
pub use scheme::{Ciphertext, SoreScheme, Token};
pub use tuple::{cipher_tuples, token_tuples, SliceTuple};
