//! The SORE scheme `Π = {Token, Encrypt, Compare}`.

use crate::order::Order;
use crate::tuple::{cipher_tuples, token_tuples, SliceTuple};
use slicer_crypto::Prf;
use slicer_crypto::Rng;
use std::collections::BTreeSet;

/// A SORE query token: `b` shuffled PRF values.
pub type Token = Vec<[u8; 32]>;
/// A SORE ciphertext: `b` shuffled PRF values.
pub type Ciphertext = Vec<[u8; 32]>;

/// The Succinct Order-Revealing Encryption scheme.
///
/// Setup fixes a PRF key `k` and the bit width `b` of the plaintext
/// domain. Plaintexts are unsigned integers `< 2^b` (the paper notes any
/// practical numeric type reduces to this via scaling).
///
/// # Examples
///
/// ```
/// use slicer_sore::{Order, SoreScheme};
/// use slicer_crypto::HmacDrbg;
///
/// let sore = SoreScheme::new(b"key", 16);
/// let mut rng = HmacDrbg::from_u64(1);
/// let ct = sore.encrypt(1000, &mut rng);
/// assert!(SoreScheme::compare(&ct, &sore.token(1500, Order::Greater, &mut rng)));
/// assert!(!SoreScheme::compare(&ct, &sore.token(500, Order::Greater, &mut rng)));
/// ```
#[derive(Debug, Clone)]
pub struct SoreScheme {
    // slicer-lint: secret — the sORE comparison PRF key
    prf: Prf,
    bits: u8,
}

impl SoreScheme {
    /// Creates a scheme for `bits`-bit plaintexts under PRF key `key`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 64`.
    pub fn new(key: &[u8], bits: u8) -> Self {
        assert!((1..=64).contains(&bits), "bit width must be in 1..=64");
        SoreScheme {
            prf: Prf::new(key),
            bits,
        }
    }

    /// The plaintext bit width `b` (and hence tuple count per value).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Validates that a plaintext fits the domain.
    fn check_domain(&self, v: u64) {
        assert!(
            self.bits == 64 || v < (1u64 << self.bits),
            "plaintext {v} exceeds the {}-bit domain",
            self.bits
        );
    }

    /// `SORE.Token(k, v, oc)`: shuffled PRF images of the `b` token tuples.
    pub fn token<R: Rng + ?Sized>(&self, v: u64, oc: Order, rng: &mut R) -> Token {
        self.token_with_attr(b"", v, oc, rng)
    }

    /// Multi-attribute variant of [`SoreScheme::token`] (Section V-F).
    pub fn token_with_attr<R: Rng + ?Sized>(
        &self,
        attr: &[u8],
        v: u64,
        oc: Order,
        rng: &mut R,
    ) -> Token {
        self.check_domain(v);
        let mut out: Vec<[u8; 32]> = token_tuples(attr, v, self.bits, oc)
            .iter()
            .map(|t| self.prf.eval(&t.encode()))
            .collect();
        shuffle(&mut out, rng);
        out
    }

    /// `SORE.Encrypt(k, v)`: shuffled PRF images of the `b` cipher tuples.
    pub fn encrypt<R: Rng + ?Sized>(&self, v: u64, rng: &mut R) -> Ciphertext {
        self.encrypt_with_attr(b"", v, rng)
    }

    /// Multi-attribute variant of [`SoreScheme::encrypt`].
    pub fn encrypt_with_attr<R: Rng + ?Sized>(
        &self,
        attr: &[u8],
        v: u64,
        rng: &mut R,
    ) -> Ciphertext {
        self.check_domain(v);
        let mut out: Vec<[u8; 32]> = cipher_tuples(attr, v, self.bits)
            .iter()
            .map(|t| self.prf.eval(&t.encode()))
            .collect();
        shuffle(&mut out, rng);
        out
    }

    /// `SORE.Compare(ct, tk)`: true iff the sets share exactly one element.
    pub fn compare(ct: &[[u8; 32]], tk: &[[u8; 32]]) -> bool {
        let tk_set: BTreeSet<&[u8; 32]> = tk.iter().collect();
        ct.iter().filter(|c| tk_set.contains(*c)).count() == 1
    }

    /// Number of common elements between a ciphertext and a token — exposed
    /// because the *count* is exactly the scheme's leakage (the index of the
    /// first differing bit can be recovered from comparing two tokens; see
    /// the leakage discussion in Section VI-A). Used by leakage tests.
    pub fn common_count(a: &[[u8; 32]], b: &[[u8; 32]]) -> usize {
        let set: BTreeSet<&[u8; 32]> = a.iter().collect();
        b.iter().filter(|x| set.contains(*x)).count()
    }

    /// Raw (pre-PRF) ciphertext tuples — the SSE keywords `w = ct_i` that
    /// Algorithm 1 indexes.
    pub fn cipher_slice_tuples(&self, attr: &[u8], v: u64) -> Vec<SliceTuple> {
        self.check_domain(v);
        cipher_tuples(attr, v, self.bits)
    }

    /// Raw (pre-PRF) token tuples — what Algorithm 3 turns into search
    /// tokens.
    pub fn token_slice_tuples(&self, attr: &[u8], v: u64, oc: Order) -> Vec<SliceTuple> {
        self.check_domain(v);
        token_tuples(attr, v, self.bits, oc)
    }
}

/// Fisher–Yates shuffle (the tuple order would otherwise leak the matched
/// bit index).
fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_crypto::HmacDrbg;
    use slicer_testkit::{prop_assert_eq, prop_check};

    fn rng() -> HmacDrbg {
        HmacDrbg::from_u64(99)
    }

    #[test]
    fn theorem1_exhaustive_4bit() {
        let sore = SoreScheme::new(b"k", 4);
        let mut r = rng();
        for x in 0u64..16 {
            for y in 0u64..16 {
                for oc in [Order::Greater, Order::Less] {
                    let tk = sore.token(x, oc, &mut r);
                    let ct = sore.encrypt(y, &mut r);
                    assert_eq!(
                        SoreScheme::compare(&ct, &tk),
                        oc.holds(x, y),
                        "x={x} oc={oc} y={y}"
                    );
                }
            }
        }
    }

    #[test]
    fn equal_values_never_match_order_token() {
        let sore = SoreScheme::new(b"k", 8);
        let mut r = rng();
        for v in [0u64, 1, 127, 128, 255] {
            let ct = sore.encrypt(v, &mut r);
            assert!(!SoreScheme::compare(
                &ct,
                &sore.token(v, Order::Greater, &mut r)
            ));
            assert!(!SoreScheme::compare(
                &ct,
                &sore.token(v, Order::Less, &mut r)
            ));
        }
    }

    #[test]
    fn at_most_one_common_tuple() {
        // The core lemma of Theorem 1's proof.
        let sore = SoreScheme::new(b"k", 8);
        let mut r = rng();
        for x in (0u64..256).step_by(7) {
            for y in (0u64..256).step_by(11) {
                let tk = sore.token(x, Order::Greater, &mut r);
                let ct = sore.encrypt(y, &mut r);
                assert!(SoreScheme::common_count(&ct, &tk) <= 1, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn domain_edges_64bit() {
        let sore = SoreScheme::new(b"k", 64);
        let mut r = rng();
        let ct = sore.encrypt(u64::MAX, &mut r);
        assert!(SoreScheme::compare(
            &ct,
            &sore.token(u64::MAX - 1, Order::Less, &mut r)
        ));
        let ct0 = sore.encrypt(0, &mut r);
        assert!(SoreScheme::compare(
            &ct0,
            &sore.token(1, Order::Greater, &mut r)
        ));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_domain_rejected() {
        let sore = SoreScheme::new(b"k", 8);
        sore.encrypt(256, &mut rng());
    }

    #[test]
    fn different_keys_never_match() {
        let s1 = SoreScheme::new(b"k1", 8);
        let s2 = SoreScheme::new(b"k2", 8);
        let mut r = rng();
        let ct = s1.encrypt(5, &mut r);
        let tk = s2.token(6, Order::Greater, &mut r);
        assert!(!SoreScheme::compare(&ct, &tk));
    }

    #[test]
    fn attributes_are_isolated() {
        let sore = SoreScheme::new(b"k", 8);
        let mut r = rng();
        let ct_age = sore.encrypt_with_attr(b"age", 30, &mut r);
        let tk_age = sore.token_with_attr(b"age", 40, Order::Greater, &mut r);
        let tk_pay = sore.token_with_attr(b"salary", 40, Order::Greater, &mut r);
        assert!(SoreScheme::compare(&ct_age, &tk_age));
        assert!(!SoreScheme::compare(&ct_age, &tk_pay));
    }

    #[test]
    fn shuffle_hides_position_but_not_content() {
        // Two tokens for the same (v, oc) contain the same PRF set in
        // (very likely) different order.
        let sore = SoreScheme::new(b"k", 16);
        let mut r = rng();
        let t1 = sore.token(12345, Order::Less, &mut r);
        let t2 = sore.token(12345, Order::Less, &mut r);
        let s1: BTreeSet<_> = t1.iter().collect();
        let s2: BTreeSet<_> = t2.iter().collect();
        assert_eq!(s1, s2);
        assert_ne!(t1, t2, "with 16 elements an identical order is ~2^-44");
    }

    #[test]
    fn theorem1_random_32bit() {
        prop_check!(0x5041, 64, |g| {
            let (x, y) = (g.u32(), g.u32());
            let sore = SoreScheme::new(b"prop", 32);
            let mut r = rng();
            let ct = sore.encrypt(y as u64, &mut r);
            for oc in [Order::Greater, Order::Less] {
                let tk = sore.token(x as u64, oc, &mut r);
                prop_assert_eq!(SoreScheme::compare(&ct, &tk), oc.holds(x as u64, y as u64));
            }
            Ok(())
        });
    }

    #[test]
    fn leakage_is_first_diff_bit_between_tokens() {
        prop_check!(0x5042, 64, |g| {
            // Comparing two *tokens* leaks the first differing bit index:
            // common count == b - (index of first differing bit) ... which
            // equals the shared-prefix tuple count. Verify the relationship.
            let (x, y) = (g.u16(), g.u16());
            let sore = SoreScheme::new(b"prop", 16);
            let mut r = rng();
            let t1 = sore.token(x as u64, Order::Greater, &mut r);
            let t2 = sore.token(y as u64, Order::Greater, &mut r);
            let common = SoreScheme::common_count(&t1, &t2);
            if x == y {
                prop_assert_eq!(common, 16);
            } else {
                let first_diff = (x ^ y).leading_zeros() as usize; // 0-based from MSB of u16
                prop_assert_eq!(common, first_diff);
            }
            Ok(())
        });
    }
}
