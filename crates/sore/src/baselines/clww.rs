//! The CLWW "practical ORE" scheme (Chenette, Lewi, Weis, Wu — FSE 2016).
//!
//! Each bit of the plaintext is encrypted as
//! `u_i = (F(k, i ‖ v_{|i-1}) + v_i) mod 3`. Comparing two ciphertexts
//! scans for the first position where `u_i` differs: if
//! `u_i = u'_i + 1 (mod 3)` the first ciphertext's plaintext is larger.
//! Leakage: the index of the first differing *bit* — strictly more than
//! SORE's pairwise token/ciphertext comparison, which reveals only the
//! order (Section VI-A).

use slicer_crypto::Prf;
use std::cmp::Ordering;

/// A CLWW ORE instance for `bits`-bit plaintexts.
///
/// # Examples
///
/// ```
/// use slicer_sore::baselines::ClwwOre;
/// use std::cmp::Ordering;
/// let ore = ClwwOre::new(b"key", 16);
/// let a = ore.encrypt(100);
/// let b = ore.encrypt(200);
/// assert_eq!(ClwwOre::compare(&a, &b), Ordering::Less);
/// ```
#[derive(Debug, Clone)]
pub struct ClwwOre {
    prf: Prf,
    bits: u8,
}

impl ClwwOre {
    /// Creates an instance for `bits`-bit plaintexts.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 64`.
    pub fn new(key: &[u8], bits: u8) -> Self {
        assert!((1..=64).contains(&bits));
        ClwwOre {
            prf: Prf::new(key),
            bits,
        }
    }

    /// Plaintext bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Encrypts `v` to a vector of `b` trits (one byte each).
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds the domain.
    pub fn encrypt(&self, v: u64) -> Vec<u8> {
        assert!(
            self.bits == 64 || v < (1u64 << self.bits),
            "plaintext exceeds domain"
        );
        (1..=self.bits)
            .map(|i| {
                let prefix = if i == 1 { 0 } else { v >> (self.bits - i + 1) };
                let v_i = ((v >> (self.bits - i)) & 1) as u8;
                let mut input = Vec::with_capacity(9);
                input.push(i);
                input.extend_from_slice(&prefix.to_be_bytes());
                let f = self.prf.eval(&input)[0] % 3;
                (f + v_i) % 3
            })
            .collect()
    }

    /// Publicly compares two ciphertexts produced under the same key.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertexts have different lengths.
    pub fn compare(a: &[u8], b: &[u8]) -> Ordering {
        assert_eq!(a.len(), b.len(), "ciphertexts from different widths");
        // Branch-free scan: the first differing trit's verdict is latched
        // with flag arithmetic instead of an early return, so the loop
        // shape is independent of where (or whether) the inputs diverge.
        let mut decided = 0u8;
        let mut greater = 0u8;
        for (x, y) in a.iter().zip(b) {
            let diff = u8::from(x != y);
            let g = u8::from((*x + 3 - *y) % 3 == 1);
            greater |= (1 - decided) & diff & g;
            decided |= diff;
        }
        match (decided, greater) {
            (0, _) => Ordering::Equal,
            (_, 1) => Ordering::Greater,
            _ => Ordering::Less,
        }
    }

    /// The leakage: index of the first differing bit (None if equal) —
    /// computable by anyone holding the two ciphertexts.
    pub fn first_diff_index(a: &[u8], b: &[u8]) -> Option<usize> {
        a.iter().zip(b).position(|(x, y)| x != y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert_eq, prop_check};

    #[test]
    fn total_order_small_domain() {
        let ore = ClwwOre::new(b"k", 6);
        for x in 0u64..64 {
            for y in 0u64..64 {
                let cx = ore.encrypt(x);
                let cy = ore.encrypt(y);
                assert_eq!(ClwwOre::compare(&cx, &cy), x.cmp(&y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn ciphertext_size_is_bit_count() {
        let ore = ClwwOre::new(b"k", 24);
        assert_eq!(ore.encrypt(12345).len(), 24);
    }

    #[test]
    fn leakage_exposes_first_diff() {
        let ore = ClwwOre::new(b"k", 8);
        // 0b1010_0000 vs 0b1011_0000 differ first at bit index 3 (0-based).
        let a = ore.encrypt(0b1010_0000);
        let b = ore.encrypt(0b1011_0000);
        assert_eq!(ClwwOre::first_diff_index(&a, &b), Some(3));
    }

    #[test]
    fn order_matches_integers() {
        prop_check!(0x5051, 64, |g| {
            let (x, y) = (g.u32(), g.u32());
            let ore = ClwwOre::new(b"prop", 32);
            prop_assert_eq!(
                ClwwOre::compare(&ore.encrypt(x as u64), &ore.encrypt(y as u64)),
                x.cmp(&y)
            );
            Ok(())
        });
    }

    /// The pre-hardening early-exit scan, kept as the semantic reference
    /// for the branch-free `compare`.
    fn reference_compare(a: &[u8], b: &[u8]) -> Ordering {
        for (x, y) in a.iter().zip(b) {
            if x != y {
                return if (*x + 3 - *y) % 3 == 1 {
                    Ordering::Greater
                } else {
                    Ordering::Less
                };
            }
        }
        Ordering::Equal
    }

    #[test]
    fn branch_free_compare_matches_reference() {
        // Adversarial trit vectors, not just well-formed ciphertexts: the
        // branch-free fold must agree with the early-exit reference on
        // every byte pattern, including equal prefixes of every length.
        prop_check!(0x5053, 256, |g| {
            let len = (g.u8() % 24) as usize;
            let a: Vec<u8> = (0..len).map(|_| g.u8() % 3).collect();
            let mut b = a.clone();
            // Flip a suffix half the time so equality is well represented.
            if g.u8() & 1 == 1 && len > 0 {
                let cut = (g.u8() as usize) % len;
                for t in &mut b[cut..] {
                    *t = g.u8() % 3;
                }
            }
            prop_assert_eq!(ClwwOre::compare(&a, &b), reference_compare(&a, &b));
            Ok(())
        });
    }
}
