//! Baseline ORE schemes for ablation against SORE.
//!
//! The paper positions SORE against prior order-revealing encryption
//! designs (Section II-B, Section VI-A): CLWW (Chenette–Lewi–Weis–Wu,
//! FSE'16) and the Lewi–Wu left/right construction (CCS'16). We implement
//! both so the benchmark harness can compare ciphertext/token sizes,
//! comparison cost and leakage granularity (`benches/ore_ablation.rs`).

mod clww;
mod lewi_wu;

pub use clww::ClwwOre;
pub use lewi_wu::LewiWuOre;
