//! A Lewi–Wu style left/right ORE (CCS 2016), small-domain blocks.
//!
//! The plaintext is split into `d`-bit blocks. The *left* encryption of a
//! block carries a keyed block commitment; the *right* encryption carries,
//! for every possible block value `j ∈ [0, 2^d)`, the masked comparison
//! result `cmp(j, block)`. Comparing a left ciphertext with a right
//! ciphertext reveals only the first differing **block** (not bit), at the
//! cost of right ciphertexts growing as `(b/d) · 2^d` entries — the
//! size/leakage trade-off the ablation benchmark quantifies against SORE
//! and CLWW.

use slicer_crypto::{sha256, Prf};
use std::cmp::Ordering;

/// Left (query-side) ciphertext: one commitment per block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeftCiphertext {
    blocks: Vec<[u8; 32]>,
}

/// Right (data-side) ciphertext: a masked comparison table per block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RightCiphertext {
    /// `tables[blk][j]` = masked `cmp(j, block_value)` entry.
    tables: Vec<Vec<u8>>,
    /// Per-block nonces binding the masks.
    nonces: Vec<[u8; 16]>,
}

impl RightCiphertext {
    /// Total size in bytes (table entries plus nonces).
    pub fn size_bytes(&self) -> usize {
        self.tables.iter().map(Vec::len).sum::<usize>() + self.nonces.len() * 16
    }
}

impl LeftCiphertext {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.blocks.len() * 32
    }
}

/// A Lewi–Wu style left/right ORE over `bits`-bit plaintexts with `d`-bit
/// blocks.
///
/// # Examples
///
/// ```
/// use slicer_sore::baselines::LewiWuOre;
/// use std::cmp::Ordering;
/// let ore = LewiWuOre::new(b"key", 16, 4);
/// let left = ore.encrypt_left(300);
/// let right = ore.encrypt_right(700);
/// assert_eq!(ore.compare_indexed(300, &left, &right), Ordering::Less);
/// ```
#[derive(Debug, Clone)]
pub struct LewiWuOre {
    prf: Prf,
    bits: u8,
    block_bits: u8,
}

impl LewiWuOre {
    /// Creates an instance; `block_bits` must divide `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `block_bits` does not divide `bits`, is zero, or exceeds 8.
    pub fn new(key: &[u8], bits: u8, block_bits: u8) -> Self {
        assert!((1..=64).contains(&bits));
        assert!((1..=8).contains(&block_bits), "blocks of 1..=8 bits");
        assert_eq!(bits % block_bits, 0, "block size must divide bit width");
        LewiWuOre {
            prf: Prf::new(key),
            bits,
            block_bits,
        }
    }

    fn num_blocks(&self) -> usize {
        (self.bits / self.block_bits) as usize
    }

    fn block_at(&self, v: u64, blk: usize) -> u64 {
        let shift = self.bits as usize - (blk + 1) * self.block_bits as usize;
        (v >> shift) & ((1u64 << self.block_bits) - 1)
    }

    fn prefix_before(&self, v: u64, blk: usize) -> u64 {
        if blk == 0 {
            0
        } else {
            v >> (self.bits as usize - blk * self.block_bits as usize)
        }
    }

    /// Commitment to `(blk, prefix, value)` — shared by both sides.
    fn commit(&self, blk: usize, prefix: u64, value: u64) -> [u8; 32] {
        let mut input = Vec::with_capacity(17);
        input.push(blk as u8);
        input.extend_from_slice(&prefix.to_be_bytes());
        input.extend_from_slice(&value.to_be_bytes());
        self.prf.eval(&input)
    }

    /// Left encryption (the comparison "query" side).
    pub fn encrypt_left(&self, v: u64) -> LeftCiphertext {
        self.check(v);
        LeftCiphertext {
            blocks: (0..self.num_blocks())
                .map(|blk| self.commit(blk, self.prefix_before(v, blk), self.block_at(v, blk)))
                .collect(),
        }
    }

    /// Right encryption (the stored data side).
    pub fn encrypt_right(&self, v: u64) -> RightCiphertext {
        self.check(v);
        let domain = 1usize << self.block_bits;
        let mut tables = Vec::with_capacity(self.num_blocks());
        let mut nonces = Vec::with_capacity(self.num_blocks());
        for blk in 0..self.num_blocks() {
            let prefix = self.prefix_before(v, blk);
            let actual = self.block_at(v, blk);
            // Nonce derived deterministically for testability; a production
            // deployment would randomize it per encryption.
            let mut nonce = [0u8; 16];
            nonce.copy_from_slice(&self.commit(blk, prefix, 0xFFFF_FFFF)[..16]);
            let mut table = Vec::with_capacity(domain);
            for j in 0..domain as u64 {
                let cmp_val = match j.cmp(&actual) {
                    Ordering::Less => 0u8,
                    Ordering::Equal => 1,
                    Ordering::Greater => 2,
                };
                // Mask with a hash of (commitment for j, nonce).
                let commit_j = self.commit(blk, prefix, j);
                let mut mask_in = Vec::with_capacity(48);
                mask_in.extend_from_slice(&commit_j);
                mask_in.extend_from_slice(&nonce);
                let mask = sha256(&mask_in)[0] % 3;
                table.push((cmp_val + mask) % 3);
            }
            tables.push(table);
            nonces.push(nonce);
        }
        RightCiphertext { tables, nonces }
    }

    /// Lewi–Wu comparison. In the original scheme the left ciphertext
    /// carries a PRP-permuted lookup index per block; our simplified model
    /// passes the left plaintext `x` to locate the table entries (the
    /// commitment still gates unmasking, preserving the leakage profile
    /// under comparison: only the first differing block is revealed).
    pub fn compare_indexed(
        &self,
        x: u64,
        left: &LeftCiphertext,
        right: &RightCiphertext,
    ) -> Ordering {
        assert_eq!(left.blocks.len(), right.tables.len(), "mismatched shapes");
        // Branch-free: every block is unmasked and folded; the first
        // non-equal block's verdict is latched via flag arithmetic rather
        // than an early return, so every comparison touches all blocks.
        let mut decided = 0u8;
        let mut outcome = 1u8; // 0 = less, 1 = equal, 2 = greater
        for blk in 0..left.blocks.len() {
            let j = self.block_at(x, blk) as usize;
            let nonce = &right.nonces[blk];
            let mut mask_in = Vec::with_capacity(48);
            mask_in.extend_from_slice(&left.blocks[blk]);
            mask_in.extend_from_slice(nonce);
            let mask = sha256(&mask_in)[0] % 3;
            let entry = right.tables[blk][j];
            let cmp_val = (entry + 3 - mask) % 3;
            let take = (1 - decided) & u8::from(cmp_val != 1);
            outcome = outcome * (1 - take) + cmp_val * take;
            decided |= take;
        }
        match outcome {
            0 => Ordering::Less,
            1 => Ordering::Equal,
            _ => Ordering::Greater,
        }
    }

    fn check(&self, v: u64) {
        assert!(
            self.bits == 64 || v < (1u64 << self.bits),
            "plaintext exceeds domain"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert_eq, prop_check};

    #[test]
    fn order_small_domain() {
        let ore = LewiWuOre::new(b"k", 8, 4);
        for x in 0u64..=255 {
            for y in (0u64..=255).step_by(17) {
                let left = ore.encrypt_left(x);
                let right = ore.encrypt_right(y);
                assert_eq!(
                    ore.compare_indexed(x, &left, &right),
                    x.cmp(&y),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn size_tradeoff_vs_block_width() {
        let ore2 = LewiWuOre::new(b"k", 16, 2);
        let ore8 = LewiWuOre::new(b"k", 16, 8);
        let r2 = ore2.encrypt_right(1000);
        let r8 = ore8.encrypt_right(1000);
        // 8 blocks × 4 entries vs 2 blocks × 256 entries.
        assert!(r2.size_bytes() < r8.size_bytes());
        let l2 = ore2.encrypt_left(1000);
        let l8 = ore8.encrypt_left(1000);
        assert!(l2.size_bytes() > l8.size_bytes());
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn block_must_divide_width() {
        LewiWuOre::new(b"k", 10, 4);
    }

    #[test]
    fn order_matches_random() {
        prop_check!(0x5052, 64, |g| {
            let (x, y) = (g.u16(), g.u16());
            let ore = LewiWuOre::new(b"prop", 16, 4);
            let left = ore.encrypt_left(x as u64);
            let right = ore.encrypt_right(y as u64);
            prop_assert_eq!(ore.compare_indexed(x as u64, &left, &right), x.cmp(&y));
            Ok(())
        });
    }

    /// The pre-hardening early-exit comparison, kept as the semantic
    /// reference for the branch-free `compare_indexed`.
    fn reference_compare_indexed(
        ore: &LewiWuOre,
        x: u64,
        left: &LeftCiphertext,
        right: &RightCiphertext,
    ) -> Ordering {
        for blk in 0..left.blocks.len() {
            let j = ore.block_at(x, blk) as usize;
            let mut mask_in = Vec::with_capacity(48);
            mask_in.extend_from_slice(&left.blocks[blk]);
            mask_in.extend_from_slice(&right.nonces[blk]);
            let mask = sha256(&mask_in)[0] % 3;
            let cmp_val = (right.tables[blk][j] + 3 - mask) % 3;
            match cmp_val {
                1 => continue,
                0 => return Ordering::Less,
                _ => return Ordering::Greater,
            }
        }
        Ordering::Equal
    }

    #[test]
    fn branch_free_compare_matches_reference() {
        // Includes mismatched-key pairs, where unmasking yields garbage
        // trits: the branch-free fold must still latch exactly the verdict
        // the early-exit reference would have returned.
        prop_check!(0x5054, 128, |g| {
            let (x, y) = (g.u16(), g.u16());
            let ore = LewiWuOre::new(b"prop", 16, 4);
            let other = LewiWuOre::new(b"other-key", 16, 4);
            let left = ore.encrypt_left(x as u64);
            for right in [ore.encrypt_right(y as u64), other.encrypt_right(y as u64)] {
                prop_assert_eq!(
                    ore.compare_indexed(x as u64, &left, &right),
                    reference_compare_indexed(&ore, x as u64, &left, &right)
                );
            }
            Ok(())
        });
    }
}
