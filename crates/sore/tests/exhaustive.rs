//! Exhaustive and statistical validation of SORE (Theorem 1 at scale).

use slicer_crypto::HmacDrbg;
use slicer_sore::baselines::ClwwOre;
use slicer_sore::{Order, SoreScheme};
use slicer_testkit::{prop_assert, prop_assert_eq, prop_check};

#[test]
fn theorem1_exhaustive_6bit_both_orders() {
    let sore = SoreScheme::new(b"exhaustive", 6);
    let mut rng = HmacDrbg::from_u64(2);
    // Precompute all ciphertexts once.
    let cts: Vec<_> = (0u64..64).map(|y| sore.encrypt(y, &mut rng)).collect();
    for x in 0u64..64 {
        for oc in [Order::Greater, Order::Less] {
            let tk = sore.token(x, oc, &mut rng);
            for (y, ct) in cts.iter().enumerate() {
                assert_eq!(
                    SoreScheme::compare(ct, &tk),
                    oc.holds(x, y as u64),
                    "x={x} oc={oc} y={y}"
                );
            }
        }
    }
}

#[test]
fn shuffle_spreads_match_position() {
    // The matched tuple's position in the token must be (roughly) uniform
    // across repeated tokenizations — otherwise the position would leak
    // the first differing bit index despite the shuffle.
    let sore = SoreScheme::new(b"stat", 8);
    let mut rng = HmacDrbg::from_u64(3);
    let ct = sore.encrypt(5, &mut rng);
    let mut position_counts = [0usize; 8];
    for _ in 0..400 {
        let tk = sore.token(6, Order::Greater, &mut rng);
        let hit = tk
            .iter()
            .position(|t| ct.contains(t))
            .expect("6 > 5 matches");
        position_counts[hit] += 1;
    }
    // Expected 50 per bucket; require every bucket populated and none
    // hoarding more than 30%.
    for (i, &c) in position_counts.iter().enumerate() {
        assert!(c > 10, "position {i} starved: {position_counts:?}");
        assert!(c < 120, "position {i} overloaded: {position_counts:?}");
    }
}

#[test]
fn sore_and_clww_agree_on_order() {
    // Two independent ORE constructions must induce the same order.
    let sore = SoreScheme::new(b"a", 12);
    let clww = ClwwOre::new(b"b", 12);
    let mut rng = HmacDrbg::from_u64(4);
    for (x, y) in [(0u64, 4095u64), (100, 100), (2048, 2047), (7, 8)] {
        let sore_gt = {
            let tk = sore.token(x, Order::Greater, &mut rng);
            let ct = sore.encrypt(y, &mut rng);
            SoreScheme::compare(&ct, &tk)
        };
        let clww_cmp = ClwwOre::compare(&clww.encrypt(x), &clww.encrypt(y));
        assert_eq!(
            sore_gt,
            clww_cmp == std::cmp::Ordering::Greater,
            "{x} vs {y}"
        );
    }
}

#[test]
fn theorem1_full_64bit_domain() {
    prop_check!(0x50E1, 128, |g| {
        let (x, y) = (g.u64(), g.u64());
        let sore = SoreScheme::new(b"wide", 64);
        let mut rng = HmacDrbg::from_u64(5);
        let ct = sore.encrypt(y, &mut rng);
        for oc in [Order::Greater, Order::Less] {
            let tk = sore.token(x, oc, &mut rng);
            prop_assert_eq!(SoreScheme::compare(&ct, &tk), oc.holds(x, y));
        }
        Ok(())
    });
}

#[test]
fn multi_attribute_never_cross_matches() {
    prop_check!(0x50E2, 128, |g| {
        let (x, y) = (g.u16(), g.u16());
        let attr_a = g.lower_string(1, 8);
        let attr_b = g.lower_string(1, 8);
        if attr_a == attr_b {
            return Ok(());
        }
        let sore = SoreScheme::new(b"attrs", 16);
        let mut rng = HmacDrbg::from_u64(6);
        let ct = sore.encrypt_with_attr(attr_a.as_bytes(), y as u64, &mut rng);
        let tk = sore.token_with_attr(attr_b.as_bytes(), x as u64, Order::Greater, &mut rng);
        prop_assert!(!SoreScheme::compare(&ct, &tk));
        Ok(())
    });
}

#[test]
fn tokens_of_same_value_same_oc_are_equal_as_sets() {
    prop_check!(0x50E3, 128, |g| {
        let v = g.u32();
        let sore = SoreScheme::new(b"sets", 32);
        let mut rng = HmacDrbg::from_u64(7);
        let t1 = sore.token(v as u64, Order::Less, &mut rng);
        let t2 = sore.token(v as u64, Order::Less, &mut rng);
        let s1: std::collections::HashSet<_> = t1.into_iter().collect();
        let s2: std::collections::HashSet<_> = t2.into_iter().collect();
        prop_assert_eq!(s1, s2);
        Ok(())
    });
}

#[test]
fn theorem1_exactly_one_common_element() {
    // Theorem 1 sharpened: when `x oc y` holds, ciphertext and token share
    // EXACTLY one PRF image; when it fails (including x == y) they share
    // none. Checked across the 8-, 16- and 32-bit domains the paper
    // evaluates.
    prop_check!(0x50E4, 128, |g| {
        for bits in [8u8, 16, 32] {
            let sore = SoreScheme::new(b"exactly-one", bits);
            let mut rng = HmacDrbg::from_u64(8);
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let x = g.u64() & mask;
            let y = g.u64() & mask;
            let ct = sore.encrypt(y, &mut rng);
            for oc in [Order::Greater, Order::Less] {
                let tk = sore.token(x, oc, &mut rng);
                let expected = if oc.holds(x, y) { 1 } else { 0 };
                prop_assert_eq!(SoreScheme::common_count(&ct, &tk), expected);
            }
        }
        Ok(())
    });
}
