//! Guards the telemetry fast path: creating a span (trace ids, parent
//! stack and all) through a *disabled* [`TelemetryHandle`] must stay an
//! allocation-free null check, cheap enough to leave instrumented code on
//! the hot paths of the protocol unconditionally.

use slicer_telemetry::{MonotonicClock, NullSink, TelemetryHandle};
use slicer_testkit::Bench;
use std::hint::black_box;
use std::sync::Arc;

#[test]
fn disabled_span_creation_is_nearly_free() {
    let mut bench = Bench::new("telemetry.span").warmup_ms(50).measure_ms(200);

    let disabled = TelemetryHandle::disabled();
    let off = bench.run("disabled", || {
        let mut span = disabled.span(black_box("bench.work"));
        span.attr("tokens", black_box(3u64));
        black_box(span.is_recording());
    });

    let live = TelemetryHandle::with(Arc::new(MonotonicClock::new()), Arc::new(NullSink));
    let on = bench.run("enabled", || {
        let mut span = live.span(black_box("bench.work"));
        span.attr("tokens", black_box(3u64));
        black_box(span.is_recording());
    });

    assert!(
        off.mean_ns <= on.mean_ns,
        "disabled span ({}ns) must not cost more than a recording span ({}ns)",
        off.mean_ns,
        on.mean_ns
    );
    // Generous ceiling: the disabled path is a null check plus a Drop of
    // an all-None struct — microseconds would mean an accidental
    // allocation or lock sneaked in.
    assert!(
        off.mean_ns < 2_000,
        "disabled span costs {}ns, expected well under 2µs",
        off.mean_ns
    );
}
