//! # slicer-testkit
//!
//! The workspace's in-house testing harness, so tier-1 verification runs
//! with zero external dependencies:
//!
//! * [`prop`] — a shrinking property-test harness. Write properties with
//!   [`prop_check!`], draw inputs from a [`prop::Gen`], assert with
//!   [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`]. Failures
//!   print a reproducible seed and a shrunk counterexample.
//! * [`bench`] — a monotonic-clock micro-benchmark runner for
//!   `harness = false` bench targets.
//! * [`bench_diff`] — a comparator over two bench-JSON documents with a
//!   noise-aware threshold model; `scripts/ci.sh` uses it (via
//!   `slicer-cli bench-diff`) as the perf-regression gate.
//!
//! ```
//! slicer_testkit::prop_check!(0x51CE, 64, |g| {
//!     let x = g.u64();
//!     slicer_testkit::prop_assert_eq!(x.rotate_left(13).rotate_right(13), x);
//!     Ok(())
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod bench_diff;
pub mod prop;

pub use bench::{black_box, Bench, Stats};
pub use bench_diff::{
    diff, parse_bench_json, BenchDiffError, BenchDoc, DiffConfig, DiffReport, MetricDelta,
};
pub use prop::{Gen, PropResult, DEFAULT_CASES};
