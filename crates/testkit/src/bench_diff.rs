//! Comparator over two bench-JSON documents (the [`Snapshot::to_json`]
//! schema shared by the metrics exporter, the micro-bench reporter and
//! the committed `BENCH_*.json` baselines).
//!
//! The diff model follows the workspace determinism contract: everything
//! the protocol *counts* — counters, gauges and histogram observation
//! counts — must match the baseline exactly, while everything the clock
//! *measures* — `.ns` sums, percentiles, `*_ns` gauges — is noise-prone
//! and stays informational unless a relative tolerance is supplied.
//! That split is what lets `scripts/ci.sh` regenerate a bench run on any
//! machine and still fail hard on a real regression (a gas counter or
//! event count drifting from the committed baseline) without flaking on
//! wall-clock jitter.
//!
//! [`Snapshot::to_json`]: slicer_telemetry::Snapshot::to_json

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A parse or shape error, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchDiffError {
    /// Byte offset into the input at the point of failure.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for BenchDiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bench json error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for BenchDiffError {}

/// A parsed bench document: three sorted name→value sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchDoc {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram name → summary fields
    /// (`count`/`sum`/`min`/`max`/`mean`/`p50`/`p90`/`p99`).
    pub histograms: BTreeMap<String, BTreeMap<String, u64>>,
}

/// Parses one bench-JSON document.
///
/// This is a value-producing parser for the exporter's schema subset:
/// an object of three sections, each an object whose values are either
/// unsigned integers (counters, gauges) or flat objects of unsigned
/// integers (histogram summaries). Anything outside that subset —
/// arrays, floats, booleans, nested depth — is rejected with an offset,
/// which doubles as a shape check on the files CI commits.
///
/// # Errors
///
/// [`BenchDiffError`] naming the first offending byte.
pub fn parse_bench_json(input: &str) -> Result<BenchDoc, BenchDiffError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let doc = p.document()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(doc)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> BenchDiffError {
        BenchDiffError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), BenchDiffError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, BenchDiffError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        _ => return Err(self.err("unsupported escape in metric name")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(&b) => {
                    // Metric names are ASCII in practice; pass other
                    // UTF-8 bytes through untouched.
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, BenchDiffError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected an unsigned integer"));
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point values are not part of the bench schema"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("integer out of u64 range"))
    }

    /// `{ "name": <u64>, ... }`
    fn scalar_map(&mut self) -> Result<BTreeMap<String, u64>, BenchDiffError> {
        self.object(|p| p.number())
    }

    fn object<T>(
        &mut self,
        mut value: impl FnMut(&mut Self) -> Result<T, BenchDiffError>,
    ) -> Result<BTreeMap<String, T>, BenchDiffError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let v = value(self)?;
            if out.insert(key, v).is_some() {
                return Err(self.err("duplicate key"));
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn document(&mut self) -> Result<BenchDoc, BenchDiffError> {
        let mut doc = BenchDoc::default();
        let sections = self.object(|p| {
            // Defer section-typed parsing: peek one byte past the colon
            // to decide between a scalar map and a histogram map is not
            // needed — both are objects; histograms nest one level.
            p.raw_section()
        })?;
        for (name, section) in sections {
            match (name.as_str(), section) {
                ("counters", Section::Scalars(m)) => doc.counters = m,
                ("gauges", Section::Scalars(m)) => doc.gauges = m,
                ("histograms", Section::Histograms(m)) => doc.histograms = m,
                ("counters" | "gauges", Section::Histograms(m)) if m.is_empty() => {}
                ("histograms", Section::Scalars(m)) if m.is_empty() => {}
                (other, _) => {
                    return Err(self.err(&format!("unexpected section {other:?} or wrong shape")))
                }
            }
        }
        Ok(doc)
    }

    /// A section body: either `{name: u64, ...}` or `{name: {..}, ...}`.
    fn raw_section(&mut self) -> Result<Section, BenchDiffError> {
        // Remember where the section object starts, look one key/colon
        // ahead to learn the value shape, then rewind and parse the
        // whole object with the matching value parser.
        self.skip_ws();
        let start = self.pos;
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Section::Scalars(BTreeMap::new()));
        }
        let _ = self.string()?;
        self.expect(b':')?;
        let nested = self.peek() == Some(b'{');
        self.pos = start;
        if nested {
            Ok(Section::Histograms(self.object(|p| p.scalar_map())?))
        } else {
            Ok(Section::Scalars(self.scalar_map()?))
        }
    }
}

enum Section {
    Scalars(BTreeMap<String, u64>),
    Histograms(BTreeMap<String, BTreeMap<String, u64>>),
}

/// Noise model for one diff run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffConfig {
    /// Allowed relative change on timing metrics before they count as a
    /// regression/improvement (`0.25` = ±25%). `None` (the default)
    /// leaves timing metrics informational — they never fail the gate.
    pub timing_rel: Option<f64>,
}

/// One metric whose value changed between the two documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDelta {
    /// Fully-qualified metric key, e.g. `histograms/chain.tx.ns/count`.
    pub name: String,
    /// Baseline value.
    pub old: u64,
    /// Candidate value.
    pub new: u64,
}

impl MetricDelta {
    /// Relative change in percent (positive = grew).
    pub fn percent(&self) -> f64 {
        if self.old == 0 {
            if self.new == 0 {
                0.0
            } else {
                100.0
            }
        } else {
            (self.new as f64 - self.old as f64) * 100.0 / self.old as f64
        }
    }
}

/// The typed outcome of one [`diff`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Hard failures: exact-class metrics that drifted, or timing
    /// metrics beyond the configured tolerance in the slow direction.
    pub regressions: Vec<MetricDelta>,
    /// Timing metrics beyond tolerance in the fast direction (only
    /// populated when a tolerance is configured).
    pub improvements: Vec<MetricDelta>,
    /// Informational timing drift (no tolerance configured, or within
    /// it).
    pub timing: Vec<MetricDelta>,
    /// Metrics present in the baseline but absent from the candidate —
    /// always a failure (coverage must not silently shrink).
    pub missing: Vec<String>,
    /// Metrics present in the candidate but absent from the baseline —
    /// informational (new instrumentation is allowed).
    pub added: Vec<String>,
    /// Total metric values compared.
    pub compared: u64,
}

impl DiffReport {
    /// Whether the candidate passes the gate.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Renders the report as stable, grep-able `bench-diff` lines, one
    /// finding per line, ending with a summary verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.regressions {
            out.push_str(&format!(
                "bench-diff REGRESSION {} old={} new={} ({:+.1}%)\n",
                d.name,
                d.old,
                d.new,
                d.percent()
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("bench-diff MISSING {name}\n"));
        }
        for d in &self.improvements {
            out.push_str(&format!(
                "bench-diff improvement {} old={} new={} ({:+.1}%)\n",
                d.name,
                d.old,
                d.new,
                d.percent()
            ));
        }
        for d in &self.timing {
            out.push_str(&format!(
                "bench-diff timing {} old={} new={} ({:+.1}%)\n",
                d.name,
                d.old,
                d.new,
                d.percent()
            ));
        }
        for name in &self.added {
            out.push_str(&format!("bench-diff added {name}\n"));
        }
        out.push_str(&format!(
            "bench-diff {} compared={} regressions={} missing={} improvements={} timing={} added={}\n",
            if self.ok() { "ok" } else { "FAILED" },
            self.compared,
            self.regressions.len(),
            self.missing.len(),
            self.improvements.len(),
            self.timing.len(),
            self.added.len()
        ));
        out
    }
}

/// Whether a metric key carries wall-clock weight (noise) rather than a
/// deterministic count. Histogram `count` fields are deterministic; all
/// other histogram fields summarize observed durations. Counter/gauge
/// names ending in `.ns` or `_ns` (the bench reporter's `mean_ns` /
/// `min_ns` gauges) are timing too, as are `.iters` counters — the
/// bench runner sizes iteration batches off the clock.
fn is_timing(name: &str) -> bool {
    name.ends_with(".ns") || name.ends_with("_ns") || name.ends_with(".iters") || {
        // histogram field keys: "histograms/<metric>.ns/<field>"
        match name.rsplit_once('/') {
            Some((prefix, field)) => {
                (prefix.ends_with(".ns") || prefix.ends_with("_ns")) && field != "count"
            }
            None => false,
        }
    }
}

/// Compares `new` (the fresh run) against `old` (the committed
/// baseline) under `config`, returning the typed report.
pub fn diff(old: &BenchDoc, new: &BenchDoc, config: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();

    for (section, old_map, new_map) in [
        ("counters", &old.counters, &new.counters),
        ("gauges", &old.gauges, &new.gauges),
    ] {
        let names: BTreeSet<&String> = old_map.keys().chain(new_map.keys()).collect();
        for name in names {
            compare(
                &mut report,
                config,
                format!("{section}/{name}"),
                old_map.get(name).copied(),
                new_map.get(name).copied(),
            );
        }
    }

    let hist_names: BTreeSet<&String> =
        old.histograms.keys().chain(new.histograms.keys()).collect();
    for name in hist_names {
        match (old.histograms.get(name), new.histograms.get(name)) {
            (Some(o), Some(n)) => {
                let fields: BTreeSet<&String> = o.keys().chain(n.keys()).collect();
                for field in fields {
                    compare(
                        &mut report,
                        config,
                        format!("histograms/{name}/{field}"),
                        o.get(field).copied(),
                        n.get(field).copied(),
                    );
                }
            }
            (Some(_), None) => report.missing.push(format!("histograms/{name}")),
            (None, Some(_)) => report.added.push(format!("histograms/{name}")),
            (None, None) => {}
        }
    }
    report
}

/// Classifies one shared-or-one-sided metric value pair into the report.
fn compare(
    report: &mut DiffReport,
    config: &DiffConfig,
    name: String,
    old_v: Option<u64>,
    new_v: Option<u64>,
) {
    match (old_v, new_v) {
        (Some(o), Some(n)) => {
            report.compared += 1;
            if o == n {
                return;
            }
            let delta = MetricDelta {
                name,
                old: o,
                new: n,
            };
            if !is_timing(&delta.name) {
                report.regressions.push(delta);
            } else if let Some(rel) = config.timing_rel {
                let bound = o as f64 * rel;
                if n as f64 > o as f64 + bound {
                    report.regressions.push(delta);
                } else if (n as f64) < o as f64 - bound {
                    report.improvements.push(delta);
                } else {
                    report.timing.push(delta);
                }
            } else {
                report.timing.push(delta);
            }
        }
        (Some(_), None) => report.missing.push(name),
        (None, Some(_)) => report.added.push(name),
        (None, None) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "counters": {
    "phase.build.gas": 63654,
    "phase.setup.gas": 745280
  },
  "gauges": {},
  "histograms": {
    "chain.tx.ns": {"count": 1, "sum": 15497, "min": 15497, "max": 15497, "mean": 15497, "p50": 15497, "p90": 15497, "p99": 15497}
  }
}
"#;

    #[test]
    fn parses_the_exporter_schema() {
        let doc = parse_bench_json(SAMPLE).expect("sample parses");
        assert_eq!(doc.counters["phase.build.gas"], 63654);
        assert!(doc.gauges.is_empty());
        assert_eq!(doc.histograms["chain.tx.ns"]["count"], 1);
        assert_eq!(doc.histograms["chain.tx.ns"]["p99"], 15497);
    }

    #[test]
    fn rejects_out_of_schema_documents() {
        for (input, what) in [
            ("{\"counters\": {\"a\": 1.5}}", "float"),
            ("{\"counters\": {\"a\": [1]}}", "array"),
            ("{\"counters\": {\"a\": 1}} extra", "trailing data"),
            ("{\"counters\": {\"a\": 1, \"a\": 2}}", "duplicate key"),
            ("{\"bogus\": {\"a\": 1}}", "unknown section"),
            ("{\"counters\": {\"a\": 1}", "unterminated object"),
        ] {
            assert!(parse_bench_json(input).is_err(), "accepted {what}: {input}");
        }
    }

    #[test]
    fn identical_documents_diff_clean() {
        let doc = parse_bench_json(SAMPLE).unwrap();
        let report = diff(&doc, &doc, &DiffConfig::default());
        assert!(report.ok());
        assert!(report.regressions.is_empty());
        assert!(report.timing.is_empty());
        assert_eq!(report.compared, 2 + 8);
        assert!(report.render().contains("bench-diff ok"));
    }

    #[test]
    fn counter_drift_is_a_regression_in_either_direction() {
        let old = parse_bench_json(SAMPLE).unwrap();
        for new_value in [63653u64, 63655] {
            let mut new = old.clone();
            new.counters.insert("phase.build.gas".into(), new_value);
            let report = diff(&old, &new, &DiffConfig::default());
            assert!(!report.ok());
            assert_eq!(report.regressions.len(), 1);
            assert_eq!(report.regressions[0].name, "counters/phase.build.gas");
            assert!(report.render().contains("bench-diff REGRESSION"));
        }
    }

    #[test]
    fn histogram_count_is_exact_but_sums_are_informational() {
        let old = parse_bench_json(SAMPLE).unwrap();
        let mut new = old.clone();
        new.histograms
            .get_mut("chain.tx.ns")
            .unwrap()
            .insert("sum".into(), 99_999);
        let report = diff(&old, &new, &DiffConfig::default());
        assert!(report.ok(), "timing drift alone must not fail the gate");
        assert_eq!(report.timing.len(), 1);

        let mut new = old.clone();
        new.histograms
            .get_mut("chain.tx.ns")
            .unwrap()
            .insert("count".into(), 2);
        let report = diff(&old, &new, &DiffConfig::default());
        assert!(
            !report.ok(),
            "observation-count drift is deterministic and must fail"
        );
        assert_eq!(report.regressions[0].name, "histograms/chain.tx.ns/count");
    }

    #[test]
    fn timing_tolerance_splits_regressions_from_improvements() {
        let old = parse_bench_json(SAMPLE).unwrap();
        let config = DiffConfig {
            timing_rel: Some(0.10),
        };
        let mut slower = old.clone();
        slower
            .histograms
            .get_mut("chain.tx.ns")
            .unwrap()
            .insert("sum".into(), 20_000);
        let report = diff(&old, &slower, &config);
        assert!(!report.ok());
        assert_eq!(report.regressions[0].name, "histograms/chain.tx.ns/sum");

        let mut faster = old.clone();
        faster
            .histograms
            .get_mut("chain.tx.ns")
            .unwrap()
            .insert("sum".into(), 10_000);
        let report = diff(&old, &faster, &config);
        assert!(report.ok());
        assert_eq!(report.improvements.len(), 1);

        let mut steady = old.clone();
        steady
            .histograms
            .get_mut("chain.tx.ns")
            .unwrap()
            .insert("sum".into(), 15_600);
        let report = diff(&old, &steady, &config);
        assert!(report.ok());
        assert_eq!(report.timing.len(), 1);
        assert!(report.regressions.is_empty() && report.improvements.is_empty());
    }

    #[test]
    fn missing_metrics_fail_and_added_metrics_do_not() {
        let old = parse_bench_json(SAMPLE).unwrap();
        let mut new = old.clone();
        new.counters.remove("phase.setup.gas");
        new.counters.insert("phase.extra.gas".into(), 7);
        new.histograms.remove("chain.tx.ns");
        let report = diff(&old, &new, &DiffConfig::default());
        assert!(!report.ok());
        assert_eq!(
            report.missing,
            vec!["counters/phase.setup.gas", "histograms/chain.tx.ns"]
        );
        assert_eq!(report.added, vec!["counters/phase.extra.gas"]);

        let mut grown = old.clone();
        grown.counters.insert("phase.extra.gas".into(), 7);
        assert!(diff(&old, &grown, &DiffConfig::default()).ok());
    }

    #[test]
    fn bench_reporter_gauges_are_classified_as_timing() {
        assert!(is_timing("gauges/bench.core.sha256.mean_ns"));
        assert!(is_timing("gauges/bench.core.sha256.min_ns"));
        assert!(is_timing("counters/bench.core.sha256.iters"));
        assert!(is_timing("histograms/phase.search.ns/p99"));
        assert!(!is_timing("histograms/phase.search.ns/count"));
        assert!(!is_timing("counters/phase.verify.gas"));
    }

    #[test]
    fn committed_baselines_parse_and_self_diff_clean() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for name in ["BENCH_build.json", "BENCH_search.json"] {
            let path = root.join(name);
            let text = std::fs::read_to_string(&path).expect("baseline exists");
            let path = path.display();
            let doc = parse_bench_json(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
            assert!(!doc.counters.is_empty(), "{path} has counters");
            assert!(diff(&doc, &doc, &DiffConfig::default()).ok());
        }
    }
}
