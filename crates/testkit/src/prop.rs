//! A minimal shrinking property-test harness.
//!
//! Properties draw their inputs from a [`Gen`], which records every raw
//! 64-bit choice it hands out. When a property fails, the harness replays
//! mutated copies of that choice stream — deleting blocks, zeroing entries,
//! shrinking values — and keeps any mutation that still fails, greedily
//! minimizing the counterexample before reporting it. Replaying past the
//! end of a stream yields zeros, so shortened streams always decode.
//!
//! All runs are deterministic: the per-case RNG is an HMAC-DRBG keyed by
//! `(seed, case index)`, so a failure reported for a given seed reproduces
//! by re-running the same test unchanged.
//!
//! ```should_panic
//! slicer_testkit::prop_check!(0xD5, 64, |g| {
//!     let x = g.u64_in(0, 1000);
//!     slicer_testkit::prop_assert!(x < 500, "x = {x}");
//!     Ok(())
//! });
//! ```

use slicer_crypto::{HmacDrbg, Rng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of cases for workspace property tests.
pub const DEFAULT_CASES: u64 = 64;

#[derive(Debug)]
enum Source {
    Fresh(HmacDrbg),
    Replay { choices: Vec<u64>, pos: usize },
}

/// A deterministic, recordable source of test inputs.
#[derive(Debug)]
pub struct Gen {
    source: Source,
    record: Vec<u64>,
}

impl Gen {
    fn fresh(seed: u64, case: u64) -> Self {
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&seed.to_be_bytes());
        material[8..].copy_from_slice(&case.to_be_bytes());
        Gen {
            source: Source::Fresh(HmacDrbg::new(&material)),
            record: Vec::new(),
        }
    }

    fn replay(choices: Vec<u64>) -> Self {
        Gen {
            source: Source::Replay { choices, pos: 0 },
            record: Vec::new(),
        }
    }

    fn choice(&mut self) -> u64 {
        let raw = match &mut self.source {
            Source::Fresh(drbg) => drbg.next_u64(),
            Source::Replay { choices, pos } => {
                let v = choices.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        };
        self.record.push(raw);
        raw
    }

    /// An arbitrary `u64`.
    pub fn u64(&mut self) -> u64 {
        self.choice()
    }

    /// A `u64` in the inclusive range `[lo, hi]`. Shrinks toward `lo`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.choice();
        }
        lo + self.choice() % (span + 1)
    }

    /// An arbitrary `u128` (two choices).
    pub fn u128(&mut self) -> u128 {
        (u128::from(self.choice()) << 64) | u128::from(self.choice())
    }

    /// An arbitrary `u32`.
    pub fn u32(&mut self) -> u32 {
        self.choice() as u32
    }

    /// An arbitrary `u16`.
    pub fn u16(&mut self) -> u16 {
        self.choice() as u16
    }

    /// An arbitrary `u8`.
    pub fn u8(&mut self) -> u8 {
        self.choice() as u8
    }

    /// A `usize` in the inclusive range `[lo, hi]`. Shrinks toward `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.choice() & 1 == 1
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        // 53 significand bits, the standard uniform-double construction.
        (self.choice() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A random index into a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index: empty collection");
        self.usize_in(0, len - 1)
    }

    /// A `Vec<u64>` with length in `[min_len, max_len]` and every element
    /// below `bound` (or arbitrary when `bound` is 0).
    pub fn vec_u64(&mut self, min_len: usize, max_len: usize, bound: u64) -> Vec<u64> {
        let len = self.usize_in(min_len, max_len);
        (0..len)
            .map(|_| {
                if bound == 0 {
                    self.u64()
                } else {
                    self.u64_in(0, bound - 1)
                }
            })
            .collect()
    }

    /// A byte vector with length in `[min_len, max_len]`.
    pub fn bytes(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.u8()).collect()
    }

    /// An ASCII-lowercase string with length in `[min_len, max_len]`.
    pub fn lower_string(&mut self, min_len: usize, max_len: usize) -> String {
        let len = self.usize_in(min_len, max_len);
        (0..len)
            .map(|_| (b'a' + (self.u64_in(0, 25) as u8)) as char)
            .collect()
    }
}

// `Gen` can drive any workspace sampling helper directly.
impl Rng for Gen {
    fn next_u64(&mut self) -> u64 {
        self.choice()
    }
}

/// Outcome type for property closures; build it with the `prop_assert!`
/// family or return `Err` directly.
pub type PropResult = Result<(), String>;

fn run_one<F>(prop: &mut F, gen: &mut Gen) -> PropResult
where
    F: FnMut(&mut Gen) -> PropResult,
{
    match catch_unwind(AssertUnwindSafe(|| prop(gen))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Every mutation of `choices` the shrinker will try, most aggressive
/// first: aligned block deletions, then zeroing, then value halving and
/// decrementing.
fn candidates(choices: &[u64]) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let len = choices.len();
    let mut block = len / 2;
    while block >= 1 {
        let mut start = 0;
        while start + block <= len {
            let mut c = Vec::with_capacity(len - block);
            c.extend_from_slice(&choices[..start]);
            c.extend_from_slice(&choices[start + block..]);
            out.push(c);
            start += block;
        }
        block /= 2;
    }
    for (i, &v) in choices.iter().enumerate() {
        if v != 0 {
            let mut c = choices.to_vec();
            c[i] = 0;
            out.push(c);
        }
    }
    for (i, &v) in choices.iter().enumerate() {
        // Subtract descending powers of two: greedy adoption of the largest
        // still-failing subtraction binary-searches each value down to the
        // smallest one that keeps the property failing.
        let mut sub = 1u64 << 63;
        while sub > 0 {
            if sub <= v {
                let mut c = choices.to_vec();
                c[i] = v - sub;
                out.push(c);
            }
            sub >>= 1;
        }
    }
    out
}

fn shrink<F>(
    prop: &mut F,
    mut choices: Vec<u64>,
    mut msg: String,
    mut budget: usize,
) -> (Vec<u64>, String)
where
    F: FnMut(&mut Gen) -> PropResult,
{
    loop {
        let mut improved = false;
        for cand in candidates(&choices) {
            if budget == 0 {
                return (choices, msg);
            }
            budget -= 1;
            let mut gen = Gen::replay(cand);
            if let Err(m) = run_one(prop, &mut gen) {
                // Keep the *consumed* stream (normalizes length when the
                // property read past the end of the mutated stream).
                if gen.record.len() < choices.len()
                    || (gen.record.len() == choices.len() && gen.record < choices)
                {
                    choices = gen.record;
                    msg = m;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return (choices, msg);
        }
    }
}

/// Runs `prop` against `cases` deterministic inputs derived from `seed`.
///
/// # Panics
///
/// Panics on the first failing case, after shrinking, with a message that
/// includes the seed, the case index, the shrunk raw choice stream and the
/// final failure text — everything needed to reproduce.
pub fn run<F>(seed: u64, cases: u64, mut prop: F)
where
    F: FnMut(&mut Gen) -> PropResult,
{
    for case in 0..cases {
        let mut gen = Gen::fresh(seed, case);
        if let Err(msg) = run_one(&mut prop, &mut gen) {
            let (shrunk, final_msg) = shrink(&mut prop, gen.record, msg, 10_000);
            panic!(
                "property failed: seed = {seed:#x}, case = {case}/{cases} \
                 (deterministic: re-running this test reproduces it)\n\
                 shrunk choice stream ({} draws): {shrunk:?}\n\
                 failure: {final_msg}",
                shrunk.len()
            );
        }
    }
}

/// Runs a property over `cases` deterministic inputs:
/// `prop_check!(seed, cases, |g| { ...; Ok(()) })`.
///
/// The closure receives a [`Gen`] and returns a [`PropResult`].
#[macro_export]
macro_rules! prop_check {
    ($seed:expr, $cases:expr, $prop:expr) => {
        $crate::prop::run($seed, $cases, $prop)
    };
}

/// Fails the enclosing property when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} at {}:{}",
                ::std::stringify!($cond),
                ::std::file!(),
                ::std::line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}` ({} == {}) at {}:{}",
                l,
                r,
                ::std::stringify!($left),
                ::std::stringify!($right),
                ::std::file!(),
                ::std::line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`: {} at {}:{}",
                l,
                r,
                ::std::format!($($fmt)+),
                ::std::file!(),
                ::std::line!()
            ));
        }
    }};
}

/// Fails the enclosing property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}` ({} != {}) at {}:{}",
                l,
                r,
                ::std::stringify!($left),
                ::std::stringify!($right),
                ::std::file!(),
                ::std::line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        run(1, 64, |g| {
            let _ = g.u64();
            count += 1;
            Ok(())
        });
        assert_eq!(count, 64);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let collect = |seed: u64| {
            let mut vals = Vec::new();
            run(seed, 8, |g| {
                vals.push((g.u64(), g.u64_in(3, 9), g.bytes(0, 5)));
                Ok(())
            });
            vals
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn u64_in_is_in_range() {
        run(2, 128, |g| {
            let v = g.u64_in(10, 20);
            prop_assert!((10..=20).contains(&v), "v = {v}");
            Ok(())
        });
    }

    #[test]
    fn shrinker_minimizes_threshold_counterexample() {
        // The minimal failing input for `x < 1000` under shrinking should
        // land exactly on the boundary 1000.
        let mut prop = |g: &mut Gen| {
            let x = g.u64_in(0, 100_000);
            if x >= 1000 {
                Err(format!("x = {x}"))
            } else {
                Ok(())
            }
        };
        // Find a failing case first (some case must fail: range is huge).
        let failing = (0..64)
            .find_map(|case| {
                let mut g = Gen::fresh(3, case);
                run_one(&mut prop, &mut g).is_err().then_some(g.record)
            })
            .expect("some case fails");
        let (shrunk, msg) = shrink(&mut prop, failing, "seed".into(), 10_000);
        let mut g = Gen::replay(shrunk);
        assert_eq!(g.u64_in(0, 100_000), 1000, "shrunk to boundary; msg: {msg}");
    }

    #[test]
    fn shrinker_deletes_irrelevant_elements() {
        // Fails whenever the vector contains an element >= 100; minimal
        // counterexample is a single element equal to 100.
        let mut prop = |g: &mut Gen| {
            let v = g.vec_u64(0, 20, 10_000);
            if v.iter().any(|&x| x >= 100) {
                Err(format!("v = {v:?}"))
            } else {
                Ok(())
            }
        };
        let failing = (0..64)
            .find_map(|case| {
                let mut g = Gen::fresh(4, case);
                run_one(&mut prop, &mut g).is_err().then_some(g.record)
            })
            .expect("some case fails");
        let (shrunk, _) = shrink(&mut prop, failing, "seed".into(), 10_000);
        let mut g = Gen::replay(shrunk);
        let v = g.vec_u64(0, 20, 10_000);
        assert_eq!(v, vec![100], "fully shrunk counterexample");
    }

    #[test]
    fn replay_past_end_yields_zeros() {
        let mut g = Gen::replay(vec![5]);
        assert_eq!(g.u64(), 5);
        assert_eq!(g.u64(), 0);
        assert_eq!(g.u64_in(3, 9), 3);
    }

    #[test]
    #[should_panic(expected = "shrunk choice stream")]
    fn failing_property_reports_seed_and_counterexample() {
        run(5, 64, |g| {
            let x = g.u64();
            prop_assert!(x % 2 == 0 || x % 2 == 1 && x == u64::MAX, "odd x = {x}");
            Ok(())
        });
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let mut prop = |g: &mut Gen| {
            let v = g.vec_u64(0, 10, 100);
            let _ = v[5]; // may panic: index out of bounds
            Ok(())
        };
        let failing = (0..64)
            .find_map(|case| {
                let mut g = Gen::fresh(6, case);
                run_one(&mut prop, &mut g).is_err().then_some(g.record)
            })
            .expect("some case panics");
        let (shrunk, msg) = shrink(&mut prop, failing, "seed".into(), 2000);
        assert!(msg.starts_with("panic:"), "msg = {msg}");
        // Minimal vector that still panics at index 5 has length <= 5.
        let mut g = Gen::replay(shrunk);
        let v = g.vec_u64(0, 10, 100);
        assert!(v.len() <= 5, "v = {v:?}");
    }
}
