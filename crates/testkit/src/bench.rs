//! A minimal monotonic-clock micro-benchmark runner for `harness = false`
//! bench targets: warm up, pick a batch size, sample, report mean/min.
//!
//! Timing runs on [`slicer_telemetry::MonotonicClock`] through the
//! [`Clock`] trait — the same nanosecond timebase every span and
//! histogram in the workspace uses — so bench output, metrics exports
//! and profile weights are directly comparable, and this crate holds no
//! wall-clock calls of its own for the determinism lint to flag.
//!
//! ```no_run
//! use slicer_testkit::bench::Bench;
//!
//! let mut b = Bench::new("primitives");
//! b.run("sha256/64B", || {
//!     std::hint::black_box(slicer_crypto::sha256(&[0u8; 64]));
//! });
//! ```

use slicer_telemetry::{Clock, Metrics, MonotonicClock, Snapshot};

/// Re-export: keep benched expressions out of the optimizer's reach.
pub use std::hint::black_box;

/// Environment variable naming a directory; when set, every [`Bench`]
/// group writes `BENCH_<group>.json` there on drop (the same JSON schema
/// as [`Snapshot::to_json`]).
pub const BENCH_JSON_ENV: &str = "SLICER_BENCH_JSON";

const NANOS_PER_MILLI: u64 = 1_000_000;

/// A named group of micro-benchmarks sharing one timing configuration.
#[derive(Debug)]
pub struct Bench {
    group: String,
    warmup_ns: u64,
    measure_ns: u64,
    clock: MonotonicClock,
    metrics: Metrics,
}

/// Timing summary of one benchmark id. All times are nanoseconds on the
/// group's monotonic clock.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: u64,
    /// Fastest observed sample (nanoseconds per iteration).
    pub min_ns: u64,
    /// Total iterations measured.
    pub iters: u64,
}

impl Bench {
    /// Creates a group with the workspace defaults (500 ms warmup,
    /// 1500 ms measurement — the same budget the old harness used).
    pub fn new(group: &str) -> Self {
        Bench {
            group: group.to_string(),
            warmup_ns: 500 * NANOS_PER_MILLI,
            measure_ns: 1500 * NANOS_PER_MILLI,
            clock: MonotonicClock::new(),
            metrics: Metrics::new(),
        }
    }

    /// Snapshot of everything recorded so far, in the telemetry exporter's
    /// JSON schema (gauges `bench.<group>.<id>.{mean_ns,min_ns}` plus an
    /// iteration counter per id).
    pub fn to_json(&self) -> String {
        Snapshot::of(&self.metrics).to_json()
    }

    /// Writes [`Bench::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Overrides the warmup duration.
    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.warmup_ns = ms.saturating_mul(NANOS_PER_MILLI);
        self
    }

    /// Overrides the measurement duration.
    pub fn measure_ms(mut self, ms: u64) -> Self {
        self.measure_ns = ms.saturating_mul(NANOS_PER_MILLI);
        self
    }

    fn now(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Times `f`, batching iterations so timer overhead stays negligible,
    /// and prints one report line.
    pub fn run<F: FnMut()>(&mut self, id: &str, mut f: F) -> Stats {
        let stats = self.sample_batched(&mut f);
        self.report(id, stats, None);
        stats
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// inside the timed region (one call per sample).
    pub fn run_batched<T, S, F>(&mut self, id: &str, mut setup: S, mut routine: F) -> Stats
    where
        S: FnMut() -> T,
        F: FnMut(T),
    {
        let warm_start = self.now();
        let mut warmed = false;
        while self.now() - warm_start < self.warmup_ns || !warmed {
            routine(setup());
            warmed = true;
        }

        let mut samples: Vec<u64> = Vec::new();
        let mut elapsed = 0u64;
        while elapsed < self.measure_ns || samples.is_empty() {
            let input = setup();
            let t = self.now();
            routine(input);
            let d = self.now() - t;
            samples.push(d);
            elapsed += d;
        }
        let iters = samples.len() as u64;
        let stats = summarize(&samples, iters);
        self.report(id, stats, None);
        stats
    }

    /// Like [`Bench::run`], additionally reporting throughput for `bytes`
    /// processed per iteration.
    pub fn run_throughput<F: FnMut()>(&mut self, id: &str, bytes: u64, mut f: F) -> Stats {
        let stats = self.sample_batched(&mut f);
        self.report(id, stats, Some(bytes));
        stats
    }

    /// Shared warmup + batch-sizing + sampling loop behind [`Bench::run`]
    /// and [`Bench::run_throughput`].
    fn sample_batched<F: FnMut()>(&self, f: &mut F) -> Stats {
        // Warmup: run until the warmup budget elapses, estimating the cost
        // of one iteration as we go.
        let warm_start = self.now();
        let mut warm_iters = 0u64;
        while self.now() - warm_start < self.warmup_ns || warm_iters == 0 {
            f();
            warm_iters += 1;
        }
        let per_iter_ns = (self.now() - warm_start) / warm_iters.max(1);

        // Aim for ~100 samples; each sample is a batch of iterations.
        let target_sample_ns = (self.measure_ns / 100).max(10_000);
        let batch = (target_sample_ns / per_iter_ns.max(1)).max(1);

        let mut samples: Vec<u64> = Vec::new();
        let mut total_iters = 0u64;
        let measure_start = self.now();
        while self.now() - measure_start < self.measure_ns || samples.is_empty() {
            let t = self.now();
            for _ in 0..batch {
                f();
            }
            samples.push((self.now() - t) / batch);
            total_iters += batch;
        }
        summarize(&samples, total_iters)
    }

    fn report(&self, id: &str, stats: Stats, bytes: Option<u64>) {
        let key = format!("bench.{}.{}", self.group, id);
        self.metrics.gauge(&format!("{key}.mean_ns"), stats.mean_ns);
        self.metrics.gauge(&format!("{key}.min_ns"), stats.min_ns);
        self.metrics.count(&format!("{key}.iters"), stats.iters);
        let mut line = format!(
            "{:<40} time: [mean {:>10}  min {:>10}]  ({} iters)",
            format!("{}/{}", self.group, id),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.min_ns),
            stats.iters
        );
        if let Some(b) = bytes {
            let secs = stats.mean_ns as f64 / 1e9;
            if secs > 0.0 {
                let mbps = b as f64 / secs / (1024.0 * 1024.0);
                line.push_str(&format!("  {mbps:.1} MiB/s"));
            }
        }
        println!("{line}");
    }
}

impl Drop for Bench {
    fn drop(&mut self) {
        let Ok(dir) = std::env::var(BENCH_JSON_ENV) else {
            return;
        };
        if dir.is_empty() {
            return;
        }
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.group));
        if let Err(e) = self.write_json(&path) {
            eprintln!("bench: failed to write {}: {e}", path.display());
        }
    }
}

fn summarize(samples: &[u64], iters: u64) -> Stats {
    let total: u64 = samples.iter().sum();
    let mean_ns = total / samples.len().max(1) as u64;
    let min_ns = samples.iter().min().copied().unwrap_or_default();
    Stats {
        mean_ns,
        min_ns,
        iters,
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_measures_and_counts() {
        let mut b = Bench::new("selftest").warmup_ms(5).measure_ms(20);
        let mut calls = 0u64;
        let stats = b.run("noop", || {
            calls += 1;
            black_box(calls);
        });
        assert!(stats.iters > 0);
        assert!(calls >= stats.iters);
        assert!(stats.min_ns <= stats.mean_ns);
    }

    #[test]
    fn run_batched_times_only_routine() {
        let mut b = Bench::new("selftest").warmup_ms(5).measure_ms(20);
        let stats = b.run_batched(
            "sleepless",
            || vec![0u8; 1024],
            |v| {
                black_box(v.len());
            },
        );
        assert!(stats.iters > 0);
    }

    #[test]
    fn json_snapshot_carries_stats() {
        let mut b = Bench::new("jsontest").warmup_ms(5).measure_ms(20);
        b.run("noop", || {
            black_box(1u8);
        });
        let json = b.to_json();
        assert!(json.contains("bench.jsontest.noop.mean_ns"));
        assert!(json.contains("bench.jsontest.noop.iters"));
        slicer_telemetry::json::parse(&json).expect("exporter output is valid JSON");
    }

    #[test]
    fn duration_formatting_picks_sensible_units() {
        assert_eq!(fmt_ns(123), "123 ns");
        assert_eq!(fmt_ns(5_000), "5.00 µs");
        assert_eq!(fmt_ns(7_000_000), "7.00 ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.00 s");
    }
}
