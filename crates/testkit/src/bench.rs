//! A minimal monotonic-clock micro-benchmark runner for `harness = false`
//! bench targets: warm up, pick a batch size, sample, report mean/min.
//!
//! ```no_run
//! use slicer_testkit::bench::Bench;
//!
//! let mut b = Bench::new("primitives");
//! b.run("sha256/64B", || {
//!     std::hint::black_box(slicer_crypto::sha256(&[0u8; 64]));
//! });
//! ```

use slicer_telemetry::{Metrics, Snapshot};
use std::time::{Duration, Instant};

/// Re-export: keep benched expressions out of the optimizer's reach.
pub use std::hint::black_box;

/// Environment variable naming a directory; when set, every [`Bench`]
/// group writes `BENCH_<group>.json` there on drop (the same JSON schema
/// as [`Snapshot::to_json`]).
pub const BENCH_JSON_ENV: &str = "SLICER_BENCH_JSON";

/// A named group of micro-benchmarks sharing one timing configuration.
#[derive(Debug)]
pub struct Bench {
    group: String,
    warmup: Duration,
    measure: Duration,
    metrics: Metrics,
}

/// Timing summary of one benchmark id.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed sample (per iteration).
    pub min: Duration,
    /// Total iterations measured.
    pub iters: u64,
}

impl Bench {
    /// Creates a group with the workspace defaults (500 ms warmup,
    /// 1500 ms measurement — the same budget the old harness used).
    pub fn new(group: &str) -> Self {
        Bench {
            group: group.to_string(),
            warmup: Duration::from_millis(500),
            measure: Duration::from_millis(1500),
            metrics: Metrics::new(),
        }
    }

    /// Snapshot of everything recorded so far, in the telemetry exporter's
    /// JSON schema (gauges `bench.<group>.<id>.{mean_ns,min_ns}` plus an
    /// iteration counter per id).
    pub fn to_json(&self) -> String {
        Snapshot::of(&self.metrics).to_json()
    }

    /// Writes [`Bench::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Overrides the warmup duration.
    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.warmup = Duration::from_millis(ms);
        self
    }

    /// Overrides the measurement duration.
    pub fn measure_ms(mut self, ms: u64) -> Self {
        self.measure = Duration::from_millis(ms);
        self
    }

    /// Times `f`, batching iterations so timer overhead stays negligible,
    /// and prints one report line.
    pub fn run<F: FnMut()>(&mut self, id: &str, mut f: F) -> Stats {
        // Warmup: run until the warmup budget elapses, estimating the cost
        // of one iteration as we go.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            f();
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Aim for ~100 samples; each sample is a batch of iterations.
        let target_sample = (self.measure / 100).max(Duration::from_micros(10));
        let batch = (target_sample.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;

        let mut samples: Vec<Duration> = Vec::new();
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            samples.push(t.elapsed() / batch as u32);
            total_iters += batch;
        }
        let stats = summarize(&samples, total_iters);
        self.report(id, stats, None);
        stats
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// inside the timed region (one call per sample).
    pub fn run_batched<T, S, F>(&mut self, id: &str, mut setup: S, mut routine: F) -> Stats
    where
        S: FnMut() -> T,
        F: FnMut(T),
    {
        let warm_start = Instant::now();
        let mut warmed = false;
        while warm_start.elapsed() < self.warmup || !warmed {
            routine(setup());
            warmed = true;
        }

        let mut samples: Vec<Duration> = Vec::new();
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measure || samples.is_empty() {
            let input = setup();
            let t = Instant::now();
            routine(input);
            let d = t.elapsed();
            samples.push(d);
            elapsed += d;
        }
        let iters = samples.len() as u64;
        let stats = summarize(&samples, iters);
        self.report(id, stats, None);
        stats
    }

    /// Like [`Bench::run`], additionally reporting throughput for `bytes`
    /// processed per iteration.
    pub fn run_throughput<F: FnMut()>(&mut self, id: &str, bytes: u64, mut f: F) -> Stats {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            f();
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let target_sample = (self.measure / 100).max(Duration::from_micros(10));
        let batch = (target_sample.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;

        let mut samples: Vec<Duration> = Vec::new();
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            samples.push(t.elapsed() / batch as u32);
            total_iters += batch;
        }
        let stats = summarize(&samples, total_iters);
        self.report(id, stats, Some(bytes));
        stats
    }

    fn report(&self, id: &str, stats: Stats, bytes: Option<u64>) {
        let key = format!("bench.{}.{}", self.group, id);
        let mean_ns = u64::try_from(stats.mean.as_nanos()).unwrap_or(u64::MAX);
        let min_ns = u64::try_from(stats.min.as_nanos()).unwrap_or(u64::MAX);
        self.metrics.gauge(&format!("{key}.mean_ns"), mean_ns);
        self.metrics.gauge(&format!("{key}.min_ns"), min_ns);
        self.metrics.count(&format!("{key}.iters"), stats.iters);
        let mut line = format!(
            "{:<40} time: [mean {:>10}  min {:>10}]  ({} iters)",
            format!("{}/{}", self.group, id),
            fmt_duration(stats.mean),
            fmt_duration(stats.min),
            stats.iters
        );
        if let Some(b) = bytes {
            let secs = stats.mean.as_secs_f64();
            if secs > 0.0 {
                let mbps = b as f64 / secs / (1024.0 * 1024.0);
                line.push_str(&format!("  {mbps:.1} MiB/s"));
            }
        }
        println!("{line}");
    }
}

impl Drop for Bench {
    fn drop(&mut self) {
        let Ok(dir) = std::env::var(BENCH_JSON_ENV) else {
            return;
        };
        if dir.is_empty() {
            return;
        }
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.group));
        if let Err(e) = self.write_json(&path) {
            eprintln!("bench: failed to write {}: {e}", path.display());
        }
    }
}

fn summarize(samples: &[Duration], iters: u64) -> Stats {
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len().max(1) as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    Stats { mean, min, iters }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_measures_and_counts() {
        let mut b = Bench::new("selftest").warmup_ms(5).measure_ms(20);
        let mut calls = 0u64;
        let stats = b.run("noop", || {
            calls += 1;
            black_box(calls);
        });
        assert!(stats.iters > 0);
        assert!(calls >= stats.iters);
        assert!(stats.min <= stats.mean);
    }

    #[test]
    fn run_batched_times_only_routine() {
        let mut b = Bench::new("selftest").warmup_ms(5).measure_ms(20);
        let stats = b.run_batched(
            "sleepless",
            || vec![0u8; 1024],
            |v| {
                black_box(v.len());
            },
        );
        assert!(stats.iters > 0);
    }

    #[test]
    fn json_snapshot_carries_stats() {
        let mut b = Bench::new("jsontest").warmup_ms(5).measure_ms(20);
        b.run("noop", || {
            black_box(1u8);
        });
        let json = b.to_json();
        assert!(json.contains("bench.jsontest.noop.mean_ns"));
        assert!(json.contains("bench.jsontest.noop.iters"));
        slicer_telemetry::json::parse(&json).expect("exporter output is valid JSON");
    }

    #[test]
    fn duration_formatting_picks_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(123)), "123 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
