//! # slicer-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (Section VII), plus ablations.
//!
//! Run `cargo run -p slicer-bench --release --bin repro -- --help` for the
//! experiment driver; Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;

/// The record-count sweep of the paper (10K–160K), scaled by `scale`.
pub fn record_sweep(scale: f64) -> Vec<usize> {
    [10_000usize, 20_000, 40_000, 80_000, 160_000]
        .iter()
        .map(|&n| (((n as f64) * scale) as usize).max(100))
        .collect()
}

/// Seconds with 3 decimal digits.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Megabytes with 3 decimal digits.
pub fn mb(bytes: usize) -> String {
    format!("{:.3}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_scales_and_floors() {
        assert_eq!(
            record_sweep(1.0),
            vec![10_000, 20_000, 40_000, 80_000, 160_000]
        );
        assert_eq!(record_sweep(0.001)[0], 100);
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(mb(1024 * 1024), "1.000");
    }
}
