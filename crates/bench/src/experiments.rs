//! Experiment drivers: one function per paper figure/table group.
//!
//! Absolute numbers differ from the paper (Rust vs Python, different
//! hardware, simulated chain) but each experiment preserves the paper's
//! parameter sweep and reports the same quantities, so curve *shapes* are
//! directly comparable. `scale` multiplies the 10K–160K record sweep so the
//! full suite can run in CI; `--scale 1.0` reproduces the paper's sizes.

use crate::table::Table;
use crate::{mb, record_sweep, secs};
use slicer_core::{
    CloudServer, DataOwner, Query, RecordId, SlicerConfig, SlicerSystem, WitnessStrategy,
};
use slicer_telemetry::{Clock, MonotonicClock};
use slicer_workload::{sample_query_values, DatasetSpec};

/// Seconds elapsed since `start_ns` on `clock` (timing goes through the
/// injectable telemetry [`Clock`] so the det.wall_clock lint holds).
fn secs_since(clock: &MonotonicClock, start_ns: u64) -> f64 {
    clock.now_nanos().saturating_sub(start_ns) as f64 * 1e-9
}

fn dataset(n: usize, bits: u8, seed: u64) -> Vec<(RecordId, u64)> {
    DatasetSpec::uniform(n, bits, seed)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect()
}

fn built_pair(n: usize, bits: u8, seed: u64) -> (DataOwner, CloudServer, Vec<(RecordId, u64)>) {
    let db = dataset(n, bits, seed);
    let mut owner = DataOwner::new(SlicerConfig::with_bits(bits), seed);
    let out = owner.build(&db).expect("benchmark data is in-domain");
    let mut cloud = CloudServer::new(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
    );
    cloud.ingest(&out).expect("fresh cloud accepts the build");
    (owner, cloud, db)
}

/// Fig. 3 (build time) and Fig. 4 (build storage): one sweep covers all
/// four panels.
pub fn build_experiments(scale: f64, bits_list: &[u8]) -> Vec<Table> {
    let headers_for = |unit: &str| {
        let mut h = vec!["records".to_string()];
        h.extend(bits_list.iter().map(|b| format!("{b}-bit {unit}")));
        h
    };
    let mk = |id: &str, title: &str, unit: &str| {
        let headers: Vec<String> = headers_for(unit);
        let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        Table::new(id, title, &refs)
    };
    let mut fig3a = mk("fig3a", "Build: index building time", "(s)");
    let mut fig3b = mk("fig3b", "Build: ADS building time", "(s)");
    let mut fig4a = mk("fig4a", "Build: index storage", "(MB)");
    let mut fig4b = mk("fig4b", "Build: ADS storage (prime list)", "(MB)");

    for &n in &record_sweep(scale) {
        let mut r3a = vec![n.to_string()];
        let mut r3b = vec![n.to_string()];
        let mut r4a = vec![n.to_string()];
        let mut r4b = vec![n.to_string()];
        for &bits in bits_list {
            let db = dataset(n, bits, 42);
            let mut owner = DataOwner::new(SlicerConfig::with_bits(bits), 42);
            let out = owner.build(&db).expect("in-domain");
            let mut cloud = CloudServer::new(
                owner.config().clone(),
                owner.keys().trapdoor().public().clone(),
            );
            cloud.ingest(&out).expect("fresh cloud");
            r3a.push(secs(out.timing.index));
            r3b.push(secs(out.timing.ads));
            r4a.push(mb(cloud.storage().index.size_bytes()));
            r4b.push(mb(cloud.storage().primes.size_bytes()));
        }
        fig3a.push_row(r3a);
        fig3b.push_row(r3b);
        fig4a.push_row(r4a);
        fig4b.push_row(r4b);
    }
    vec![fig3a, fig3b, fig4a, fig4b]
}

/// Fig. 5 (search time) and Fig. 6 (search overhead): equality and order
/// queries over the record sweep, 8- and 16-bit settings as in the paper.
pub fn search_experiments(scale: f64, bits_list: &[u8], queries: usize) -> Vec<Table> {
    let headers_for = |unit: &str| {
        let mut h = vec!["records".to_string()];
        h.extend(bits_list.iter().map(|b| format!("{b}-bit {unit}")));
        h
    };
    let mk = |id: &str, title: &str, unit: &str| {
        let headers: Vec<String> = headers_for(unit);
        let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        Table::new(id, title, &refs)
    };
    let mut fig5a = mk("fig5a", "Equality search: result generation time", "(s)");
    let mut fig5b = mk("fig5b", "Equality search: VO generation time", "(s)");
    let mut fig5c = mk("fig5c", "Order search: result generation time", "(s)");
    let mut fig5d = mk("fig5d", "Order search: VO generation time", "(s)");
    let mut fig6a = mk("fig6a", "Order search: number of search tokens", "(tokens)");
    let mut fig6b = mk("fig6b", "Equality search: encrypted result size", "(KB)");
    let mut fig6c = mk("fig6c", "Order search: encrypted result size", "(KB)");
    let mut fig6d = mk("fig6d", "Order search: VO size", "(bytes)");

    for &n in &record_sweep(scale) {
        let mut rows: Vec<Vec<String>> = (0..8).map(|_| vec![n.to_string()]).collect();
        for &bits in bits_list {
            let (owner, mut cloud, db) = built_pair(n, bits, 42);
            cloud.set_strategy(WitnessStrategy::Direct);
            let raw: Vec<([u8; 16], u64)> = db.iter().map(|(id, v)| (id.0, *v)).collect();
            let values = sample_query_values(&raw, queries, 7);

            let (mut eq_search, mut eq_vo, mut eq_bytes) = (0.0f64, 0.0f64, 0usize);
            let (mut ord_search, mut ord_vo, mut ord_bytes) = (0.0f64, 0.0f64, 0usize);
            let (mut ord_tokens, mut ord_vo_bytes) = (0usize, 0usize);
            let clock = MonotonicClock::new();
            for &v in &values {
                // Equality query.
                let tokens = owner.search_tokens(&Query::equal(v));
                let t0 = clock.now_nanos();
                let results = cloud.search(&tokens);
                eq_search += secs_since(&clock, t0);
                eq_bytes += results.iter().map(|r| r.er.len() * 32).sum::<usize>();
                let t0 = clock.now_nanos();
                let vos = cloud.prove(&results).expect("bench state is honest");
                eq_vo += secs_since(&clock, t0);
                drop(vos);

                // Order query (< v).
                let tokens = owner.search_tokens(&Query::less_than(v));
                ord_tokens += tokens.len();
                let t0 = clock.now_nanos();
                let results = cloud.search(&tokens);
                ord_search += secs_since(&clock, t0);
                ord_bytes += results.iter().map(|r| r.er.len() * 32).sum::<usize>();
                let t0 = clock.now_nanos();
                let vos = cloud.prove(&results).expect("bench state is honest");
                ord_vo += secs_since(&clock, t0);
                ord_vo_bytes += vos.iter().map(Vec::len).sum::<usize>();
            }
            let q = queries as f64;
            rows[0].push(format!("{:.4}", eq_search / q));
            rows[1].push(format!("{:.4}", eq_vo / q));
            rows[2].push(format!("{:.4}", ord_search / q));
            rows[3].push(format!("{:.4}", ord_vo / q));
            rows[4].push(format!("{:.1}", ord_tokens as f64 / q));
            rows[5].push(format!("{:.3}", eq_bytes as f64 / q / 1024.0));
            rows[6].push(format!("{:.3}", ord_bytes as f64 / q / 1024.0));
            rows[7].push(format!("{:.0}", ord_vo_bytes as f64 / q));
        }
        let mut it = rows.into_iter();
        fig5a.push_row(it.next().expect("8 rows"));
        fig5b.push_row(it.next().expect("8 rows"));
        fig5c.push_row(it.next().expect("8 rows"));
        fig5d.push_row(it.next().expect("8 rows"));
        fig6a.push_row(it.next().expect("8 rows"));
        fig6b.push_row(it.next().expect("8 rows"));
        fig6c.push_row(it.next().expect("8 rows"));
        fig6d.push_row(it.next().expect("8 rows"));
    }
    vec![fig5a, fig5b, fig5c, fig5d, fig6a, fig6b, fig6c, fig6d]
}

/// Fig. 7: insertion time after a 160K-record preload.
pub fn insert_experiment(scale: f64, bits_list: &[u8]) -> Vec<Table> {
    let headers_full: Vec<String> = {
        let mut h = vec!["inserted".to_string()];
        for b in bits_list {
            h.push(format!("{b}-bit index (s)"));
            h.push(format!("{b}-bit ADS (s)"));
        }
        h
    };
    let refs: Vec<&str> = headers_full.iter().map(String::as_str).collect();
    let mut fig7 = Table::new(
        "fig7",
        "Insert time after preloading the largest dataset",
        &refs,
    );

    let preload = *record_sweep(scale).last().expect("non-empty sweep");
    for &m in &record_sweep(scale) {
        let mut row = vec![m.to_string()];
        for &bits in bits_list {
            let mut owner = DataOwner::new(SlicerConfig::with_bits(bits), 42);
            owner.build(&dataset(preload, bits, 42)).expect("in-domain");
            // Fresh IDs (offset past the preload) with the same value law.
            let inserts: Vec<(RecordId, u64)> = dataset(m, bits, 43)
                .into_iter()
                .enumerate()
                .map(|(i, (_, v))| (RecordId::from_u64((preload + i) as u64), v))
                .collect();
            let out = owner.insert(&inserts).expect("in-domain");
            row.push(secs(out.timing.index));
            row.push(secs(out.timing.ads));
        }
        fig7.push_row(row);
    }
    vec![fig7]
}

/// Table II: gas consumption of the smart contract. The USD column uses
/// the paper's quoted conversion (1 gwei gas price, ETH at $3 000).
pub fn gas_experiment() -> Vec<Table> {
    let mut t = Table::new(
        "table2",
        "Gas cost of smart contract (paper: 745,346 / 29,144 / 94,531)",
        &["operation", "gas cost", "USD @1gwei/ETH=3000"],
    );

    // Deployment: measured on a fresh chain.
    let mut chain = slicer_chain::Blockchain::new();
    let deployer = slicer_chain::Address::from_byte(1);
    chain.create_account(deployer, 1);
    let deploy = chain
        .deploy_contract(
            deployer,
            Box::new(slicer_chain::SlicerContract::fixed_512()),
            0,
        )
        .expect("funded deployer");
    let usd = |g: u64| format!("{:.3}", slicer_chain::gas_to_usd(g, 1.0, 3_000.0));
    t.push_row(vec![
        "Deployment".into(),
        deploy.gas_used.to_string(),
        usd(deploy.gas_used),
    ]);

    // Data insertion + verification: a representative small deployment
    // (the paper's costs are per-operation, independent of data size for
    // insertion and near-constant for single-slice verification).
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 4242);
    let db = dataset(500, 8, 4242);
    sys.build(&db).expect("in-domain");
    let ins = sys
        .insert(&[(RecordId::from_u64(1_000_000), 77)])
        .expect("in-domain");
    t.push_row(vec![
        "Data insertion".into(),
        ins.gas_used.to_string(),
        usd(ins.gas_used),
    ]);

    let outcome = sys
        .search(&Query::equal(db[0].1), 1_000)
        .expect("search succeeds");
    assert!(outcome.verified, "honest verification must pass");
    t.push_row(vec![
        "Result verification".into(),
        outcome.verify_gas.to_string(),
        usd(outcome.verify_gas),
    ]);
    t.push_row(vec![
        "Search request (not in paper)".into(),
        outcome.request_gas.to_string(),
        usd(outcome.request_gas),
    ]);

    // Ablation: the same verification under Berlin (EIP-2565) MODEXP
    // pricing — shows how much of the cost is precompile pricing policy.
    let mut chain = slicer_chain::Blockchain::with_schedule(slicer_chain::GasSchedule::eip2565());
    let mut inst = slicer_core::SlicerInstance::setup(SlicerConfig::test_8bit(), 4242, &mut chain);
    inst.build(&mut chain, &db).expect("in-domain");
    let outcome = inst
        .search(&mut chain, &Query::equal(db[0].1), 1_000)
        .expect("search succeeds");
    assert!(outcome.verified);
    t.push_row(vec![
        "Result verification (EIP-2565 ablation)".into(),
        outcome.verify_gas.to_string(),
        usd(outcome.verify_gas),
    ]);
    vec![t]
}

/// The telemetry profiling experiment: one deployment built and searched
/// under an enabled telemetry context. Exports the build-phase and
/// search-phase registries as `BENCH_build.json` / `BENCH_search.json` in
/// `out` (when given) and returns a per-phase latency + gas table.
pub fn telemetry_experiment(
    scale: f64,
    queries: usize,
    out: Option<&std::path::Path>,
) -> Vec<Table> {
    use slicer_telemetry::{global, Snapshot, TelemetryHandle};

    let n = record_sweep(scale)[0];
    let db = dataset(n, 8, 42);

    // Build under its own registry (global facade captures the leaf-crate
    // counters: SORE tuples, index lookups, witness generation).
    let build_handle = TelemetryHandle::enabled();
    global::set(build_handle.clone());
    let mut sys = SlicerSystem::setup_with(SlicerConfig::test_8bit(), 42, build_handle.clone());
    sys.build(&db).expect("in-domain");
    let build_snap = build_handle.snapshot();

    // Search the same deployment under a fresh registry.
    let search_handle = TelemetryHandle::enabled();
    sys.instance_mut().set_telemetry(search_handle.clone());
    global::set(search_handle.clone());
    let raw: Vec<([u8; 16], u64)> = db.iter().map(|(id, v)| (id.0, *v)).collect();
    for &v in &sample_query_values(&raw, queries, 7) {
        let outcome = sys
            .search(&Query::less_than(v), 1_000)
            .expect("search succeeds");
        assert!(outcome.verified, "honest searches verify");
        assert_eq!(
            outcome.profile.total_gas(),
            outcome.request_gas + outcome.verify_gas,
            "phase gas must reconcile with the receipts"
        );
    }
    let search_snap = search_handle.snapshot();
    global::reset();

    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("results directory is creatable");
        std::fs::write(dir.join("BENCH_build.json"), build_snap.to_json())
            .expect("results directory is writable");
        std::fs::write(dir.join("BENCH_search.json"), search_snap.to_json())
            .expect("results directory is writable");
    }

    let mut t = Table::new(
        "bench",
        "Telemetry: per-phase latency and gas (see results/BENCH_*.json)",
        &["phase", "mean (ms)", "p99 (ms)", "gas"],
    );
    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    let mut push_phase = |snap: &Snapshot, phase: &str| {
        let hist = snap
            .histogram(&format!("phase.{phase}.ns"))
            .expect("phase recorded");
        let gas = snap
            .counter(&format!("phase.{phase}.gas"))
            .expect("phase gas recorded");
        t.push_row(vec![
            phase.to_string(),
            ms(hist.mean()),
            ms(hist.p99),
            gas.to_string(),
        ]);
    };
    for phase in ["setup", "build"] {
        push_phase(&build_snap, phase);
    }
    for phase in ["token", "search", "verify", "settle"] {
        push_phase(&search_snap, phase);
    }
    vec![t]
}

/// Runs every experiment at the given scale.
pub fn all(scale: f64, queries: usize) -> Vec<Table> {
    let mut out = build_experiments(scale, &[8, 16, 24]);
    out.extend(search_experiments(scale, &[8, 16], queries));
    out.extend(insert_experiment(scale, &[8, 16, 24]));
    out.extend(gas_experiment());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gas_experiment_lands_near_paper() {
        let t = &gas_experiment()[0];
        let get = |op: &str| -> u64 {
            t.rows.iter().find(|r| r[0] == op).expect("row present")[1]
                .parse()
                .expect("numeric gas")
        };
        let deploy = get("Deployment");
        let insert = get("Data insertion");
        let verify = get("Result verification");
        // Same order of magnitude as Table II (745,346 / 29,144 / 94,531).
        assert!((600_000..900_000).contains(&deploy), "deploy {deploy}");
        assert!((24_000..40_000).contains(&insert), "insert {insert}");
        assert!((50_000..200_000).contains(&verify), "verify {verify}");
    }

    #[test]
    fn telemetry_experiment_covers_all_phases() {
        let t = &telemetry_experiment(0.001, 1, None)[0];
        let phases: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(
            phases,
            ["setup", "build", "token", "search", "verify", "settle"]
        );
        for r in &t.rows {
            let gas: u64 = r[3].parse().expect("numeric gas");
            if matches!(r[0].as_str(), "setup" | "build" | "token" | "verify") {
                assert!(gas > 0, "{} must consume gas", r[0]);
            }
        }
    }

    #[test]
    fn build_experiment_tiny_scale_runs() {
        let tables = build_experiments(0.001, &[8]);
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].rows.len(), 5);
    }
}
