//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p slicer-bench --release --bin repro -- [--experiment ID] [--scale F] [--queries N] [--csv DIR]
//! ```
//!
//! * `--experiment` — `all` (default), `fig3`, `fig4` (runs with fig3),
//!   `fig5`, `fig6` (runs with fig5), `fig7`, `table2`, `bench`
//!   (telemetry phase profile; writes `BENCH_build.json` /
//!   `BENCH_search.json` into the `--csv` directory).
//! * `--scale` — multiplier on the paper's 10K–160K record sweep
//!   (default 0.05; use 1.0 for the full-size runs).
//! * `--queries` — queries averaged per search data point (default 3).
//! * `--csv` — also write each table as CSV into this directory.

use slicer_bench::experiments;
use slicer_bench::Table;
use std::path::PathBuf;

struct Args {
    experiment: String,
    scale: f64,
    queries: usize,
    csv: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".into(),
        scale: 0.05,
        queries: 3,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--experiment" | "-e" => {
                args.experiment = it.next().expect("--experiment needs a value");
            }
            "--scale" | "-s" => {
                args.scale = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale must be a float");
            }
            "--queries" | "-q" => {
                args.queries = it
                    .next()
                    .expect("--queries needs a value")
                    .parse()
                    .expect("--queries must be an integer");
            }
            "--csv" => {
                args.csv = Some(PathBuf::from(it.next().expect("--csv needs a directory")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--experiment all|fig3|fig5|fig7|table2|bench] [--scale F] [--queries N] [--csv DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "Slicer reproduction — experiment={} scale={} queries={}",
        args.experiment, args.scale, args.queries
    );
    println!(
        "(record sweep: {:?})",
        slicer_bench::record_sweep(args.scale)
    );

    let tables: Vec<Table> = match args.experiment.as_str() {
        "all" => experiments::all(args.scale, args.queries),
        "fig3" | "fig4" | "fig3a" | "fig3b" | "fig4a" | "fig4b" => {
            experiments::build_experiments(args.scale, &[8, 16, 24])
        }
        "fig5" | "fig6" | "fig5a" | "fig5b" | "fig5c" | "fig5d" | "fig6a" | "fig6b" | "fig6c"
        | "fig6d" => experiments::search_experiments(args.scale, &[8, 16], args.queries),
        "fig7" => experiments::insert_experiment(args.scale, &[8, 16, 24]),
        "table2" => experiments::gas_experiment(),
        "bench" | "telemetry" => {
            experiments::telemetry_experiment(args.scale, args.queries, args.csv.as_deref())
        }
        other => {
            eprintln!("unknown experiment {other}; try --help");
            std::process::exit(2);
        }
    };

    for t in &tables {
        print!("{t}");
        if let Some(dir) = &args.csv {
            t.write_csv(dir).expect("CSV directory is writable");
        }
    }
    if let Some(dir) = &args.csv {
        println!("\nCSV written to {}", dir.display());
    }
    // The bench experiment mirrors its telemetry exports to the working
    // directory so tooling expecting ./BENCH_*.json finds them without
    // knowing --csv.
    if matches!(args.experiment.as_str(), "bench" | "telemetry") {
        if let Some(dir) = &args.csv {
            for name in ["BENCH_build.json", "BENCH_search.json"] {
                let src = dir.join(name);
                if src.exists() {
                    std::fs::copy(&src, name).expect("working directory is writable");
                    println!("mirrored {} -> ./{name}", src.display());
                }
            }
        }
    }
}
