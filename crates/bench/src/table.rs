//! Result tables: pretty printing and CSV export.

use std::fmt;
use std::io::Write;
use std::path::Path;

/// A labelled result table for one experiment (one paper figure/table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier, e.g. `"fig3a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified values).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Writes the table as CSV into `dir/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n=== {} — {} ===", self.id, self.title)?;
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, w) in cells.iter().zip(&widths) {
                write!(f, "| {c:>w$} ")?;
            }
            writeln!(f, "|")
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new("fig0", "demo", &["n", "time"]);
        t.push_row(vec!["10".into(), "0.5".into()]);
        t.push_row(vec!["10000".into(), "12.25".into()]);
        let s = t.to_string();
        assert!(s.contains("fig0"));
        assert!(s.contains("| 10000 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", "y", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("slicer-bench-test");
        let mut t = Table::new("fig_test", "demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig_test.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }
}
