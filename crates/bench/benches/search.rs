//! Micro-benchmark behind Fig. 5 / Fig. 6: equality vs order search,
//! result generation vs VO generation.

use slicer_core::{CloudServer, DataOwner, Query, RecordId, SlicerConfig, WitnessStrategy};
use slicer_testkit::bench::{black_box, Bench};
use slicer_workload::DatasetSpec;

fn setup(n: usize, bits: u8) -> (DataOwner, CloudServer, u64) {
    let db: Vec<(RecordId, u64)> = DatasetSpec::uniform(n, bits, 1)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect();
    let probe = db[n / 2].1;
    let mut owner = DataOwner::new(SlicerConfig::with_bits(bits), 1);
    let out = owner.build(&db).expect("in-domain");
    let mut cloud = CloudServer::new(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
    );
    cloud.ingest(&out).expect("fresh cloud");
    (owner, cloud, probe)
}

fn main() {
    let mut group = Bench::new("search");
    for bits in [8u8, 16] {
        let (owner, mut cloud, probe) = setup(2_000, bits);

        let eq_tokens = owner.search_tokens(&Query::equal(probe));
        group.run(&format!("equality/results/{bits}"), || {
            black_box(cloud.search(&eq_tokens));
        });
        let eq_results = cloud.search(&eq_tokens);
        group.run(&format!("equality/vo/{bits}"), || {
            black_box(cloud.prove(&eq_results).expect("bench state is honest"));
        });

        let ord_tokens = owner.search_tokens(&Query::less_than(probe));
        group.run(&format!("order/results/{bits}"), || {
            black_box(cloud.search(&ord_tokens));
        });
        let ord_results = cloud.search(&ord_tokens);
        cloud.set_strategy(WitnessStrategy::Batched);
        group.run(&format!("order/vo_batched/{bits}"), || {
            black_box(cloud.prove(&ord_results).expect("bench state is honest"));
        });
    }
}
