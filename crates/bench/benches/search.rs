//! Criterion micro-benchmark behind Fig. 5 / Fig. 6: equality vs order
//! search, result generation vs VO generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slicer_core::{CloudServer, DataOwner, Query, RecordId, SlicerConfig, WitnessStrategy};
use slicer_workload::DatasetSpec;

fn setup(n: usize, bits: u8) -> (DataOwner, CloudServer, u64) {
    let db: Vec<(RecordId, u64)> = DatasetSpec::uniform(n, bits, 1)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect();
    let probe = db[n / 2].1;
    let mut owner = DataOwner::new(SlicerConfig::with_bits(bits), 1);
    let out = owner.build(&db).expect("in-domain");
    let mut cloud = CloudServer::new(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
    );
    cloud.ingest(&out).expect("fresh cloud");
    (owner, cloud, probe)
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    for bits in [8u8, 16] {
        let (owner, mut cloud, probe) = setup(2_000, bits);

        let eq_tokens = owner.search_tokens(&Query::equal(probe));
        group.bench_function(BenchmarkId::new("equality/results", bits), |b| {
            b.iter(|| cloud.search(&eq_tokens));
        });
        let eq_results = cloud.search(&eq_tokens);
        group.bench_function(BenchmarkId::new("equality/vo", bits), |b| {
            b.iter(|| cloud.prove(&eq_results));
        });

        let ord_tokens = owner.search_tokens(&Query::less_than(probe));
        group.bench_function(BenchmarkId::new("order/results", bits), |b| {
            b.iter(|| cloud.search(&ord_tokens));
        });
        let ord_results = cloud.search(&ord_tokens);
        cloud.set_strategy(WitnessStrategy::Batched);
        group.bench_function(BenchmarkId::new("order/vo_batched", bits), |b| {
            b.iter(|| cloud.prove(&ord_results));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` tractable while still
    // averaging enough iterations for stable relative comparisons.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_search
}
criterion_main!(benches);
