//! Micro-benchmark behind Fig. 7: forward-secure insertion after a preload.

use slicer_core::{DataOwner, RecordId, SlicerConfig};
use slicer_testkit::bench::{black_box, Bench};
use slicer_workload::DatasetSpec;

fn main() {
    let mut group = Bench::new("insert");
    for bits in [8u8, 16] {
        for batch in [50usize, 200] {
            group.run_batched(
                &format!("{bits}bit/{batch}"),
                || {
                    // Preloaded owner + fresh insert batch.
                    let preload: Vec<(RecordId, u64)> = DatasetSpec::uniform(1_000, bits, 1)
                        .generate()
                        .into_iter()
                        .map(|(id, v)| (RecordId(id), v))
                        .collect();
                    let mut owner = DataOwner::new(SlicerConfig::with_bits(bits), 1);
                    owner.build(&preload).expect("in-domain");
                    let inserts: Vec<(RecordId, u64)> = DatasetSpec::uniform(batch, bits, 2)
                        .generate()
                        .into_iter()
                        .enumerate()
                        .map(|(i, (_, v))| (RecordId::from_u64(1_000_000 + i as u64), v))
                        .collect();
                    (owner, inserts)
                },
                |(mut owner, inserts)| {
                    black_box(owner.insert(&inserts).expect("in-domain"));
                },
            );
        }
    }
}
