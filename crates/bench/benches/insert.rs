//! Criterion micro-benchmark behind Fig. 7: forward-secure insertion after
//! a preload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slicer_core::{DataOwner, RecordId, SlicerConfig};
use slicer_workload::DatasetSpec;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    group.sample_size(10);
    for bits in [8u8, 16] {
        for batch in [50usize, 200] {
            group.bench_with_input(
                BenchmarkId::new(format!("{bits}bit"), batch),
                &batch,
                |b, &batch| {
                    b.iter_batched(
                        || {
                            // Preloaded owner + fresh insert batch.
                            let preload: Vec<(RecordId, u64)> =
                                DatasetSpec::uniform(1_000, bits, 1)
                                    .generate()
                                    .into_iter()
                                    .map(|(id, v)| (RecordId(id), v))
                                    .collect();
                            let mut owner =
                                DataOwner::new(SlicerConfig::with_bits(bits), 1);
                            owner.build(&preload).expect("in-domain");
                            let inserts: Vec<(RecordId, u64)> =
                                DatasetSpec::uniform(batch, bits, 2)
                                    .generate()
                                    .into_iter()
                                    .enumerate()
                                    .map(|(i, (_, v))| {
                                        (RecordId::from_u64(1_000_000 + i as u64), v)
                                    })
                                    .collect();
                            (owner, inserts)
                        },
                        |(mut owner, inserts)| owner.insert(&inserts).expect("in-domain"),
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` tractable while still
    // averaging enough iterations for stable relative comparisons.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_insert
}
criterion_main!(benches);
