//! Ablation: forward-security cost — trapdoor chain walks as the update
//! count `j` grows (the cloud pays one public-permutation application per
//! generation during search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slicer_crypto::HmacDrbg;
use slicer_trapdoor::TrapdoorKeyPair;

fn bench_trapdoor(c: &mut Criterion) {
    let kp = TrapdoorKeyPair::fixed_test();
    let mut rng = HmacDrbg::from_u64(1);
    let t0 = kp.public().random_trapdoor(&mut rng);

    let mut group = c.benchmark_group("trapdoor");
    group.bench_function("owner_invert", |b| {
        b.iter(|| kp.invert(&t0));
    });
    group.bench_function("cloud_forward", |b| {
        b.iter(|| kp.public().forward(&t0));
    });
    for j in [1u64, 8, 64] {
        let tj = kp.walk_back(&t0, j);
        group.bench_with_input(BenchmarkId::new("cloud_walk", j), &j, |b, &j| {
            b.iter(|| kp.public().walk_forward(&tj, j));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` tractable while still
    // averaging enough iterations for stable relative comparisons.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_trapdoor
}
criterion_main!(benches);
