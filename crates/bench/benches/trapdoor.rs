//! Ablation: forward-security cost — trapdoor chain walks as the update
//! count `j` grows (the cloud pays one public-permutation application per
//! generation during search).

use slicer_crypto::HmacDrbg;
use slicer_testkit::bench::{black_box, Bench};
use slicer_trapdoor::TrapdoorKeyPair;

fn main() {
    let kp = TrapdoorKeyPair::fixed_test();
    let mut rng = HmacDrbg::from_u64(1);
    let t0 = kp.public().random_trapdoor(&mut rng);

    let mut group = Bench::new("trapdoor");
    group.run("owner_invert", || {
        black_box(kp.invert(&t0));
    });
    group.run("cloud_forward", || {
        black_box(kp.public().forward(&t0));
    });
    for j in [1u64, 8, 64] {
        let tj = kp.walk_back(&t0, j);
        group.run(&format!("cloud_walk/{j}"), || {
            black_box(kp.public().walk_forward(&tj, j));
        });
    }
}
