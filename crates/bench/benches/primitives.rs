//! Micro-benchmark: substrate throughput — the from-scratch crypto and
//! bignum primitives every protocol operation sits on.

use slicer_bignum::BigUint;
use slicer_crypto::aes::Aes128;
use slicer_crypto::{hmac_sha256, sha256};
use slicer_mshash::MsetHash;
use slicer_testkit::bench::{black_box, Bench};

fn main() {
    let mut group = Bench::new("primitives");

    let data_1k = vec![0xABu8; 1024];
    group.run_throughput("sha256/1KiB", 1024, || {
        black_box(sha256(&data_1k));
    });
    group.run_throughput("hmac_sha256/1KiB", 1024, || {
        black_box(hmac_sha256(b"key", &data_1k));
    });
    let cipher = Aes128::new(&[7u8; 16]);
    let mut buf = data_1k.clone();
    group.run_throughput("aes128_ctr/1KiB", 1024, || {
        cipher.ctr_xor(&[1u8; 16], &mut buf);
        black_box(buf[0]);
    });

    let mut group = Bench::new("bignum");
    let n512 = slicer_accumulator::RsaParams::fixed_512();
    let base = BigUint::from(123_456_789u64);
    let exp128 = BigUint::from_hex("ffffffffffffffffffffffffffffffff").expect("hex");
    group.run("modpow_512_e128", || {
        black_box(n512.powmod(&base, &exp128));
    });
    let a = &BigUint::one() << 2048;
    let bb = &(&BigUint::one() << 2047) + &BigUint::from(12345u64);
    group.run("mul_2048x2048", || {
        black_box(&a * &bb);
    });
    let big = &a * &a;
    group.run("div_4096_by_2048", || {
        black_box(big.div_rem(&bb));
    });

    let mut group = Bench::new("mshash");
    let mut h = MsetHash::empty();
    group.run("insert", || {
        h.insert(b"a 32-byte encrypted record id...");
    });
}
