//! Substrate throughput: the from-scratch crypto and bignum primitives
//! every protocol operation sits on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slicer_bignum::BigUint;
use slicer_crypto::aes::Aes128;
use slicer_crypto::{hmac_sha256, sha256};
use slicer_mshash::MsetHash;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");

    let data_1k = vec![0xABu8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256/1KiB", |b| {
        b.iter(|| sha256(&data_1k));
    });
    group.bench_function("hmac_sha256/1KiB", |b| {
        b.iter(|| hmac_sha256(b"key", &data_1k));
    });
    group.bench_function("aes128_ctr/1KiB", |b| {
        let cipher = Aes128::new(&[7u8; 16]);
        let mut buf = data_1k.clone();
        b.iter(|| cipher.ctr_xor(&[1u8; 16], &mut buf));
    });
    group.finish();

    let mut group = c.benchmark_group("bignum");
    let n512 = slicer_accumulator::RsaParams::fixed_512();
    let base = BigUint::from(123_456_789u64);
    let exp128 = BigUint::from_hex("ffffffffffffffffffffffffffffffff").expect("hex");
    group.bench_function("modpow_512_e128", |b| {
        b.iter(|| n512.powmod(&base, &exp128));
    });
    let a = &BigUint::one() << 2048;
    let bb = &(&BigUint::one() << 2047) + &BigUint::from(12345u64);
    group.bench_function("mul_2048x2048", |b| {
        b.iter(|| &a * &bb);
    });
    group.bench_function("div_4096_by_2048", |b| {
        let big = &a * &a;
        b.iter(|| big.div_rem(&bb));
    });
    group.finish();

    let mut group = c.benchmark_group("mshash");
    group.bench_function("insert", |b| {
        let mut h = MsetHash::empty();
        b.iter(|| h.insert(b"a 32-byte encrypted record id..."));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` tractable while still
    // averaging enough iterations for stable relative comparisons.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_primitives
}
criterion_main!(benches);
