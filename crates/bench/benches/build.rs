//! Criterion micro-benchmark behind Fig. 3 / Fig. 4: `Build` cost per
//! record count and bit width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slicer_core::{DataOwner, RecordId, SlicerConfig};
use slicer_workload::DatasetSpec;

fn dataset(n: usize, bits: u8) -> Vec<(RecordId, u64)> {
    DatasetSpec::uniform(n, bits, 1)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for bits in [8u8, 16] {
        for n in [500usize, 1_000, 2_000] {
            let db = dataset(n, bits);
            group.bench_with_input(
                BenchmarkId::new(format!("{bits}bit"), n),
                &db,
                |b, db| {
                    b.iter(|| {
                        let mut owner = DataOwner::new(SlicerConfig::with_bits(bits), 1);
                        owner.build(db).expect("in-domain")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` tractable while still
    // averaging enough iterations for stable relative comparisons.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_build
}
criterion_main!(benches);
