//! Micro-benchmark behind Fig. 3 / Fig. 4: `Build` cost per record count
//! and bit width.

use slicer_core::{DataOwner, RecordId, SlicerConfig};
use slicer_testkit::bench::{black_box, Bench};
use slicer_workload::DatasetSpec;

fn dataset(n: usize, bits: u8) -> Vec<(RecordId, u64)> {
    DatasetSpec::uniform(n, bits, 1)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect()
}

fn main() {
    let mut group = Bench::new("build");
    for bits in [8u8, 16] {
        for n in [500usize, 1_000, 2_000] {
            let db = dataset(n, bits);
            group.run(&format!("{bits}bit/{n}"), || {
                let mut owner = DataOwner::new(SlicerConfig::with_bits(bits), 1);
                black_box(owner.build(&db).expect("in-domain"));
            });
        }
    }
}
