//! Criterion micro-benchmark behind Table II: wall-clock cost of the three
//! contract operations (the gas *units* themselves are reported by the
//! `repro --experiment table2` driver; this bench tracks the simulator's
//! execution cost).

use criterion::{criterion_group, criterion_main, Criterion};
use slicer_chain::{Address, Blockchain, SlicerContract};
use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_workload::DatasetSpec;

fn bench_gas_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("gas");
    group.sample_size(10);

    group.bench_function("deploy", |b| {
        b.iter(|| {
            let mut chain = Blockchain::new();
            let d = Address::from_byte(1);
            chain.create_account(d, 1);
            chain
                .deploy_contract(d, Box::new(SlicerContract::fixed_512()), 0)
                .expect("funded")
        });
    });

    let db: Vec<(RecordId, u64)> = DatasetSpec::uniform(300, 8, 1)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect();
    let probe = db[0].1;

    group.bench_function("insert_tx", |b| {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 1);
        sys.build(&db).expect("in-domain");
        let mut next = 1_000_000u64;
        b.iter(|| {
            next += 1;
            sys.insert(&[(RecordId::from_u64(next), 9)]).expect("in-domain")
        });
    });

    group.bench_function("verify_tx", |b| {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 1);
        sys.build(&db).expect("in-domain");
        b.iter(|| {
            let out = sys.search(&Query::equal(probe), 10).expect("search runs");
            assert!(out.verified);
            out
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` tractable while still
    // averaging enough iterations for stable relative comparisons.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_gas_ops
}
criterion_main!(benches);
