//! Micro-benchmark behind Table II: wall-clock cost of the three contract
//! operations (the gas *units* themselves are reported by the
//! `repro --experiment table2` driver; this bench tracks the simulator's
//! execution cost).

use slicer_chain::{Address, Blockchain, SlicerContract};
use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_testkit::bench::{black_box, Bench};
use slicer_workload::DatasetSpec;

fn main() {
    let mut group = Bench::new("gas");

    group.run("deploy", || {
        let mut chain = Blockchain::new();
        let d = Address::from_byte(1);
        chain.create_account(d, 1);
        black_box(
            chain
                .deploy_contract(d, Box::new(SlicerContract::fixed_512()), 0)
                .expect("funded"),
        );
    });

    let db: Vec<(RecordId, u64)> = DatasetSpec::uniform(300, 8, 1)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect();
    let probe = db[0].1;

    {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 1);
        sys.build(&db).expect("in-domain");
        let mut next = 1_000_000u64;
        group.run("insert_tx", || {
            next += 1;
            black_box(
                sys.insert(&[(RecordId::from_u64(next), 9)])
                    .expect("in-domain"),
            );
        });
    }

    {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 1);
        sys.build(&db).expect("in-domain");
        group.run("verify_tx", || {
            let out = sys.search(&Query::equal(probe), 10).expect("search runs");
            assert!(out.verified);
            black_box(out);
        });
    }
}
