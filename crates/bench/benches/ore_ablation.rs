//! Ablation: SORE vs CLWW vs Lewi–Wu — encryption, token generation and
//! comparison cost, plus ciphertext sizes (reported as throughput here;
//! sizes are asserted in the `ore_sizes` integration test).

use slicer_crypto::HmacDrbg;
use slicer_sore::baselines::{ClwwOre, LewiWuOre};
use slicer_sore::{Order, SoreScheme};
use slicer_testkit::bench::{black_box, Bench};

const BITS: u8 = 16;

fn main() {
    let mut group = Bench::new("ore_ablation");
    let sore = SoreScheme::new(b"key", BITS);
    let clww = ClwwOre::new(b"key", BITS);
    let lw = LewiWuOre::new(b"key", BITS, 4);
    let mut rng = HmacDrbg::from_u64(1);

    group.run("sore/encrypt", || {
        black_box(sore.encrypt(12_345, &mut rng));
    });
    group.run("sore/token", || {
        black_box(sore.token(12_345, Order::Greater, &mut rng));
    });
    {
        let ct = sore.encrypt(10_000, &mut rng);
        let tk = sore.token(20_000, Order::Greater, &mut rng);
        group.run("sore/compare", || {
            black_box(SoreScheme::compare(&ct, &tk));
        });
    }

    group.run("clww/encrypt", || {
        black_box(clww.encrypt(12_345));
    });
    {
        let a = clww.encrypt(10_000);
        let bb = clww.encrypt(20_000);
        group.run("clww/compare", || {
            black_box(ClwwOre::compare(&a, &bb));
        });
    }

    group.run("lewi_wu/encrypt_right", || {
        black_box(lw.encrypt_right(12_345));
    });
    group.run("lewi_wu/encrypt_left", || {
        black_box(lw.encrypt_left(12_345));
    });
    {
        let left = lw.encrypt_left(10_000);
        let right = lw.encrypt_right(20_000);
        group.run("lewi_wu/compare", || {
            black_box(lw.compare_indexed(10_000, &left, &right));
        });
    }
}
