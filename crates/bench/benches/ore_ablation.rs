//! Ablation: SORE vs CLWW vs Lewi–Wu — encryption, token generation and
//! comparison cost, plus ciphertext sizes (reported as throughput here;
//! sizes are asserted in the `ore_sizes` integration test).

use criterion::{criterion_group, criterion_main, Criterion};
use slicer_crypto::HmacDrbg;
use slicer_sore::baselines::{ClwwOre, LewiWuOre};
use slicer_sore::{Order, SoreScheme};

const BITS: u8 = 16;

fn bench_ore(c: &mut Criterion) {
    let mut group = c.benchmark_group("ore_ablation");
    let sore = SoreScheme::new(b"key", BITS);
    let clww = ClwwOre::new(b"key", BITS);
    let lw = LewiWuOre::new(b"key", BITS, 4);
    let mut rng = HmacDrbg::from_u64(1);

    group.bench_function("sore/encrypt", |b| {
        b.iter(|| sore.encrypt(12_345, &mut rng));
    });
    group.bench_function("sore/token", |b| {
        b.iter(|| sore.token(12_345, Order::Greater, &mut rng));
    });
    {
        let ct = sore.encrypt(10_000, &mut rng);
        let tk = sore.token(20_000, Order::Greater, &mut rng);
        group.bench_function("sore/compare", |b| {
            b.iter(|| SoreScheme::compare(&ct, &tk));
        });
    }

    group.bench_function("clww/encrypt", |b| {
        b.iter(|| clww.encrypt(12_345));
    });
    {
        let a = clww.encrypt(10_000);
        let bb = clww.encrypt(20_000);
        group.bench_function("clww/compare", |b| {
            b.iter(|| ClwwOre::compare(&a, &bb));
        });
    }

    group.bench_function("lewi_wu/encrypt_right", |b| {
        b.iter(|| lw.encrypt_right(12_345));
    });
    group.bench_function("lewi_wu/encrypt_left", |b| {
        b.iter(|| lw.encrypt_left(12_345));
    });
    {
        let left = lw.encrypt_left(10_000);
        let right = lw.encrypt_right(20_000);
        group.bench_function("lewi_wu/compare", |b| {
            b.iter(|| lw.compare_indexed(10_000, &left, &right));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` tractable while still
    // averaging enough iterations for stable relative comparisons.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_ore
}
criterion_main!(benches);
