//! Ablation: accumulator witness strategies (direct vs batched vs
//! root-factor) and accumulation itself — the design choice behind
//! Fig. 5b/5d's VO-generation curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slicer_accumulator::{hash_to_prime, witness, Accumulator, RsaParams, WitnessCache};
use slicer_bignum::BigUint;

fn primes(n: u32) -> Vec<BigUint> {
    (0..n).map(|i| hash_to_prime(&i.to_be_bytes(), 128)).collect()
}

fn bench_ads(c: &mut Criterion) {
    let params = RsaParams::fixed_512();
    let mut group = c.benchmark_group("ads_ablation");
    group.sample_size(10);

    for q in [200u32, 800] {
        let ps = primes(q);
        group.bench_with_input(BenchmarkId::new("accumulate", q), &ps, |b, ps| {
            b.iter(|| Accumulator::over(&params, ps));
        });
        group.bench_with_input(BenchmarkId::new("witness_direct_x1", q), &ps, |b, ps| {
            b.iter(|| witness::membership_witness(&params, ps, 0));
        });
        // 16 slices of an order query: direct does 16 full folds, batched
        // shares the complement fold.
        let targets: Vec<usize> = (0..16).map(|i| i * (q as usize / 16)).collect();
        group.bench_with_input(
            BenchmarkId::new("witness_direct_x16", q),
            &ps,
            |b, ps| {
                b.iter(|| {
                    targets
                        .iter()
                        .map(|&t| witness::membership_witness(&params, ps, t))
                        .collect::<Vec<_>>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("witness_batched_x16", q),
            &ps,
            |b, ps| {
                b.iter(|| witness::witness_batch(&params, ps, &targets));
            },
        );
        group.bench_with_input(BenchmarkId::new("root_factor_all", q), &ps, |b, ps| {
            b.iter(|| witness::root_factor(&params, params.generator(), ps));
        });
        // Witness cache: build once, then per-query cost is a lookup; an
        // insert-batch update costs q short exponentiations.
        group.bench_with_input(BenchmarkId::new("witness_cache_build", q), &ps, |b, ps| {
            b.iter(|| WitnessCache::build(&params, ps));
        });
        group.bench_with_input(BenchmarkId::new("witness_cache_update16", q), &ps, |b, ps| {
            let extra: Vec<BigUint> = (10_000..10_016u32)
                .map(|i| hash_to_prime(&i.to_be_bytes(), 128))
                .collect();
            let cache = WitnessCache::build(&params, ps);
            let mut full = ps.to_vec();
            full.extend(extra);
            b.iter_batched(
                || cache.clone(),
                |mut c| c.update(&params, &full),
                criterion::BatchSize::LargeInput,
            );
        });

        // Verification (the contract-side cost): constant regardless of q.
        let acc = Accumulator::over(&params, &ps);
        let w = witness::membership_witness(&params, &ps, 0);
        group.bench_with_input(BenchmarkId::new("verify", q), &ps, |b, ps| {
            b.iter(|| {
                assert!(witness::verify_membership(&params, &ps[0], &w, acc.value()));
            });
        });

        // Merkle-tree baseline (Section III-B's point of comparison):
        // cheaper to build and verify off-chain, but O(log n) proof size
        // and position leakage.
        let leaves: Vec<Vec<u8>> = ps.iter().map(|p| p.to_bytes_be()).collect();
        group.bench_with_input(BenchmarkId::new("merkle_build", q), &leaves, |b, l| {
            b.iter(|| slicer_accumulator::merkle::MerkleTree::build(l));
        });
        let tree = slicer_accumulator::merkle::MerkleTree::build(&leaves);
        group.bench_with_input(BenchmarkId::new("merkle_prove", q), &tree, |b, t| {
            b.iter(|| t.prove(0));
        });
        let proof = tree.prove(0);
        group.bench_with_input(BenchmarkId::new("merkle_verify", q), &leaves, |b, l| {
            b.iter(|| {
                assert!(slicer_accumulator::merkle::MerkleTree::verify(
                    &tree.root(),
                    &l[0],
                    &proof
                ));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` tractable while still
    // averaging enough iterations for stable relative comparisons.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_ads
}
criterion_main!(benches);
