//! Ablation: accumulator witness strategies (direct vs batched vs
//! root-factor) and accumulation itself — the design choice behind
//! Fig. 5b/5d's VO-generation curves.

use slicer_accumulator::{hash_to_prime, witness, Accumulator, RsaParams, WitnessCache};
use slicer_bignum::BigUint;
use slicer_testkit::bench::{black_box, Bench};

fn primes(n: u32) -> Vec<BigUint> {
    (0..n)
        .map(|i| hash_to_prime(&i.to_be_bytes(), 128).expect("width ok"))
        .collect()
}

fn main() {
    let params = RsaParams::fixed_512();
    let mut group = Bench::new("ads_ablation");

    for q in [200u32, 800] {
        let ps = primes(q);
        group.run(&format!("accumulate/{q}"), || {
            black_box(Accumulator::over(&params, &ps));
        });
        group.run(&format!("witness_direct_x1/{q}"), || {
            black_box(witness::membership_witness(&params, &ps, 0).expect("in range"));
        });
        // 16 slices of an order query: direct does 16 full folds, batched
        // shares the complement fold.
        let targets: Vec<usize> = (0..16).map(|i| i * (q as usize / 16)).collect();
        group.run(&format!("witness_direct_x16/{q}"), || {
            black_box(
                targets
                    .iter()
                    .map(|&t| witness::membership_witness(&params, &ps, t).expect("in range"))
                    .collect::<Vec<_>>(),
            );
        });
        group.run(&format!("witness_batched_x16/{q}"), || {
            black_box(witness::witness_batch(&params, &ps, &targets).expect("valid targets"));
        });
        group.run(&format!("root_factor_all/{q}"), || {
            black_box(witness::root_factor(&params, params.generator(), &ps));
        });
        // Witness cache: build once, then per-query cost is a lookup; an
        // insert-batch update costs q short exponentiations.
        group.run(&format!("witness_cache_build/{q}"), || {
            black_box(WitnessCache::build(&params, &ps));
        });
        {
            let extra: Vec<BigUint> = (10_000..10_016u32)
                .map(|i| hash_to_prime(&i.to_be_bytes(), 128).expect("width ok"))
                .collect();
            let cache = WitnessCache::build(&params, &ps);
            let mut full = ps.to_vec();
            full.extend(extra);
            group.run_batched(
                &format!("witness_cache_update16/{q}"),
                || cache.clone(),
                |mut c| {
                    c.update(&params, &full).expect("consistent cache");
                    black_box(&c);
                },
            );
        }

        // Verification (the contract-side cost): constant regardless of q.
        let acc = Accumulator::over(&params, &ps);
        let w = witness::membership_witness(&params, &ps, 0).expect("in range");
        group.run(&format!("verify/{q}"), || {
            assert!(witness::verify_membership(&params, &ps[0], &w, acc.value()));
        });

        // Merkle-tree baseline (Section III-B's point of comparison):
        // cheaper to build and verify off-chain, but O(log n) proof size
        // and position leakage.
        let leaves: Vec<Vec<u8>> = ps.iter().map(|p| p.to_bytes_be()).collect();
        group.run(&format!("merkle_build/{q}"), || {
            black_box(slicer_accumulator::merkle::MerkleTree::build(&leaves).expect("non-empty"));
        });
        let tree = slicer_accumulator::merkle::MerkleTree::build(&leaves).expect("non-empty");
        group.run(&format!("merkle_prove/{q}"), || {
            black_box(tree.prove(0).expect("in range"));
        });
        let proof = tree.prove(0).expect("in range");
        group.run(&format!("merkle_verify/{q}"), || {
            assert!(slicer_accumulator::merkle::MerkleTree::verify(
                &tree.root(),
                &leaves[0],
                &proof
            ));
        });
    }
}
