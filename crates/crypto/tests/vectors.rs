//! Official test vectors for the from-scratch primitives.
//!
//! Sources: FIPS 197 Appendix C (AES-128 ECB), NIST SP 800-38A F.1.1/F.5.1
//! (ECB/CTR), FIPS 180-4 (SHA-256), RFC 4231 §4 (HMAC-SHA256 cases 1–4).

use slicer_crypto::aes::Aes128;
use slicer_crypto::{hmac_sha256, sha256};

fn hex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(s.len() % 2 == 0, "odd hex length");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex digit"))
        .collect()
}

fn hex16(s: &str) -> [u8; 16] {
    hex(s).try_into().expect("16 bytes")
}

#[test]
fn aes128_fips197_appendix_c() {
    let cipher = Aes128::new(&hex16("000102030405060708090a0b0c0d0e0f"));
    let ct = cipher.encrypt_block(&hex16("00112233445566778899aabbccddeeff"));
    assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
}

#[test]
fn aes128_ecb_sp800_38a_f11() {
    let cipher = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
    let cases = [
        (
            "6bc1bee22e409f96e93d7e117393172a",
            "3ad77bb40d7a3660a89ecaf32466ef97",
        ),
        (
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "f5d3d58503b9699de785895a96fdbaaf",
        ),
        (
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "43b1cd7f598ece23881b00e3ed030688",
        ),
        (
            "f69f2445df4f9b17ad2b417be66c3710",
            "7b0c785e27e8ad3f8223207104725dd4",
        ),
    ];
    for (pt, ct) in cases {
        assert_eq!(cipher.encrypt_block(&hex16(pt)), hex16(ct), "block {pt}");
    }
}

/// SP 800-38A F.5.1 (AES-128-CTR). Our CTR variant XORs a 64-bit counter
/// into the low half of the nonce instead of 128-bit add-with-carry, so the
/// two conventions agree exactly when the counter is zero: keystream block
/// `i` of the NIST vector is our first block under NIST's `i`-th counter
/// block. That still exercises every keystream byte of the official vector
/// through the CTR path.
#[test]
fn aes128_ctr_sp800_38a_f51() {
    let cipher = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
    let counter_blocks = [
        "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff",
        "f0f1f2f3f4f5f6f7f8f9fafbfcfdff00",
        "f0f1f2f3f4f5f6f7f8f9fafbfcfdff01",
        "f0f1f2f3f4f5f6f7f8f9fafbfcfdff02",
    ];
    let plaintext = [
        "6bc1bee22e409f96e93d7e117393172a",
        "ae2d8a571e03ac9c9eb76fac45af8e51",
        "30c81c46a35ce411e5fbc1191a0a52ef",
        "f69f2445df4f9b17ad2b417be66c3710",
    ];
    let ciphertext = [
        "874d6191b620e3261bef6864990db6ce",
        "9806f66b7970fdff8617187bb9fffdff",
        "5ae4df3edbd5d35e5b4f09020db03eab",
        "1e031dda2fbe03d1792170a0f3009cee",
    ];
    for i in 0..4 {
        let mut data = hex(plaintext[i]);
        cipher.ctr_xor(&hex16(counter_blocks[i]), &mut data);
        assert_eq!(data, hex(ciphertext[i]), "CTR block {i}");
    }
}

#[test]
fn ctr_xor_is_an_involution() {
    let cipher = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
    let nonce = hex16("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    let original: Vec<u8> = (0u8..100).collect();
    let mut data = original.clone();
    cipher.ctr_xor(&nonce, &mut data);
    assert_ne!(data, original);
    cipher.ctr_xor(&nonce, &mut data);
    assert_eq!(data, original);
}

#[test]
fn sha256_fips180_4() {
    assert_eq!(
        sha256(b"").to_vec(),
        hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
    );
    assert_eq!(
        sha256(b"abc").to_vec(),
        hex("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
    );
    assert_eq!(
        sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_vec(),
        hex("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
    );
}

#[test]
fn sha256_million_a() {
    let msg = vec![b'a'; 1_000_000];
    assert_eq!(
        sha256(&msg).to_vec(),
        hex("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
    );
}

#[test]
fn hmac_sha256_rfc4231_case_1() {
    let mac = hmac_sha256(&[0x0b; 20], b"Hi There");
    assert_eq!(
        mac.to_vec(),
        hex("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
    );
}

#[test]
fn hmac_sha256_rfc4231_case_2() {
    let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
    assert_eq!(
        mac.to_vec(),
        hex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
    );
}

#[test]
fn hmac_sha256_rfc4231_case_3() {
    let mac = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
    assert_eq!(
        mac.to_vec(),
        hex("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe")
    );
}

#[test]
fn hmac_sha256_rfc4231_case_4() {
    let key: Vec<u8> = (0x01..=0x19).collect();
    let mac = hmac_sha256(&key, &[0xcd; 50]);
    assert_eq!(
        mac.to_vec(),
        hex("82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b")
    );
}
