//! # slicer-crypto
//!
//! Symmetric cryptographic primitives for the Slicer reproduction,
//! implemented from scratch and validated against the official test vectors:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4).
//! * [`hmac_sha256`] — HMAC-SHA256 (RFC 2104 / RFC 4231), the pseudo-random
//!   function `F`/`G` used throughout the paper's protocols (the paper uses
//!   "HMAC-128": HMAC truncated to 128 bits; we expose both full and
//!   truncated forms).
//! * [`aes`] — the AES-128 block cipher (FIPS 197) and a CTR-mode stream
//!   cipher used for the record-ID encryption `Enc(K_R, ·)`.
//! * [`Prf`] — a keyed PRF façade over HMAC with domain-separated derivation
//!   ([`Prf::derive`]) mirroring `G(K, w‖1)` / `G(K, w‖2)` in Algorithm 1.
//! * [`HmacDrbg`] — a deterministic random bit generator used for seeded,
//!   reproducible experiments. It implements the workspace's own [`Rng`]
//!   trait, so no external RNG crate is needed anywhere in the build.
//! * [`codec`] — the [`Encode`]/[`Decode`] trait pair every persistable
//!   type in the workspace implements; the whole wire format lives here.
//!
//! # Example
//!
//! ```
//! use slicer_crypto::{Prf, SymmetricKey};
//!
//! let prf = Prf::new(b"index key");
//! let label = prf.eval(b"trapdoor || counter");
//! assert_eq!(label.len(), 32);
//!
//! let key = SymmetricKey::from_bytes([7u8; 16]);
//! let ct = key.encrypt(b"record-42", &[1u8; 16]);
//! assert_eq!(key.decrypt(&ct).unwrap(), b"record-42");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod codec;
mod drbg;
mod error;
mod hmac_mod;
mod prf;
mod rng;
mod sha256_mod;
mod symmetric;

pub use codec::{CodecError, Decode, Encode};
pub use drbg::HmacDrbg;
pub use error::CryptoError;
pub use hmac_mod::{hmac_sha256, Hmac};
pub use prf::{Prf, PrfStream};
pub use rng::Rng;
pub use sha256_mod::{sha256, Sha256};
pub use symmetric::SymmetricKey;

/// Convenience: SHA-256 truncated to 16 bytes (the paper's 128-bit outputs).
pub fn digest128(data: &[u8]) -> [u8; 16] {
    let d = sha256(data);
    let mut out = [0u8; 16];
    out.copy_from_slice(&d[..16]);
    out
}
