//! HMAC-SHA256 (RFC 2104).

use crate::sha256_mod::{sha256, Sha256};

const BLOCK_SIZE: usize = 64;

/// Incremental HMAC-SHA256.
///
/// # Examples
///
/// ```
/// use slicer_crypto::Hmac;
/// let mut mac = Hmac::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag, slicer_crypto::hmac_sha256(b"key", b"message"));
/// ```
#[derive(Debug, Clone)]
pub struct Hmac {
    inner: Sha256,
    /// Outer hash with the opad key block already compressed — cloning an
    /// `Hmac` (the [`crate::Prf`] fast path) re-uses both key-pad
    /// compressions instead of redoing them per evaluation.
    outer: Sha256,
}

impl Hmac {
    /// Creates an HMAC context for `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            block_key[..32].copy_from_slice(&sha256(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_SIZE];
        let mut opad = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        Hmac { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut mac = Hmac::new(key);
    mac.update(message);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case7_long_key_long_data() {
        let key = [0xaau8; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"incremental key";
        let msg = b"a message split across several update calls";
        let mut mac = Hmac::new(key);
        for c in msg.chunks(5) {
            mac.update(c);
        }
        assert_eq!(mac.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
