//! A compact binary codec (little-endian, length-prefixed) implemented as a
//! plain trait pair so the workspace needs no serialization framework.
//!
//! The format is *not* self-describing: decoding is driven by the target
//! type, exactly like the wire formats real SSE deployments use. Integers
//! are fixed-width little-endian; `String`/sequences/maps carry a `u64`
//! length prefix; options a one-byte tag; enum variants (encoded by hand in
//! each enum's impl) a `u32` index.
//!
//! Struct impls are one-liners via [`impl_codec!`]:
//!
//! ```
//! use slicer_crypto::codec::{from_bytes, to_bytes};
//!
//! #[derive(Debug, PartialEq)]
//! struct Point {
//!     x: u64,
//!     y: u64,
//! }
//! slicer_crypto::impl_codec!(Point { x, y });
//!
//! let p = Point { x: 3, y: 9 };
//! let bytes = to_bytes(&p)?;
//! assert_eq!(from_bytes::<Point>(&bytes)?, p);
//! # Ok::<(), slicer_crypto::codec::CodecError>(())
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Serializes a value to bytes.
///
/// # Errors
///
/// Infallible for the provided impls; returns `Result` so call sites keep
/// the same shape as fallible codecs.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    value.encode(&mut out);
    Ok(out)
}

/// Deserializes a value from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`CodecError`] on truncated or malformed input, or when
/// trailing bytes remain.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut reader = Reader::new(bytes);
    let value = T::decode(&mut reader)?;
    if !reader.is_empty() {
        return Err(CodecError::msg(format!(
            "{} trailing bytes after value",
            reader.remaining()
        )));
    }
    Ok(value)
}

/// Errors raised by the binary codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// Builds an error from any displayable message.
    pub fn msg(s: impl Into<String>) -> Self {
        CodecError(s.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl Error for CodecError {}

/// Types that can serialize themselves into the workspace wire format.
pub trait Encode {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Types that can reconstruct themselves from the workspace wire format.
pub trait Decode: Sized {
    /// Reads one value from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or malformed input.
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// A cursor over an input byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps `input` in a fresh cursor.
    pub fn new(input: &'a [u8]) -> Self {
        Reader { input }
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::msg("truncated input"));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    /// Reads a `u64` little-endian length prefix.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation or a length that overflows
    /// `usize`.
    pub fn read_len(&mut self) -> Result<usize, CodecError> {
        let b = self.take(8)?;
        let len = u64::from_le_bytes(b.try_into().expect("len 8"));
        usize::try_from(len).map_err(|_| CodecError::msg("length overflow"))
    }

    /// Returns how many bytes are left unread.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    /// True once every input byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }
}

/// Appends a `u64` little-endian length prefix.
pub fn write_len(out: &mut Vec<u8>, len: usize) {
    out.extend_from_slice(&(len as u64).to_le_bytes());
}

macro_rules! codec_int {
    ($ty:ty, $n:expr) => {
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }

        impl Decode for $ty {
            fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
                let b = reader.take($n)?;
                Ok(<$ty>::from_le_bytes(b.try_into().expect("sized")))
            }
        }
    };
}

codec_int!(u8, 1);
codec_int!(u16, 2);
codec_int!(u32, 4);
codec_int!(u64, 8);
codec_int!(u128, 16);
codec_int!(i8, 1);
codec_int!(i16, 2);
codec_int!(i32, 4);
codec_int!(i64, 8);
codec_int!(i128, 16);
codec_int!(f32, 4);
codec_int!(f64, 8);

// `usize` travels on the wire as u64 so encodings are identical across
// platforms regardless of pointer width.
impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Decode for usize {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u64::decode(reader)?;
        usize::try_from(v).map_err(|_| CodecError::msg(format!("usize overflow: {v}")))
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Decode for bool {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::msg(format!("invalid bool byte {b}"))),
        }
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        out.extend_from_slice(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl Decode for String {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = reader.read_len()?;
        let bytes = reader.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| CodecError::msg(e.to_string()))
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = reader.read_len()?;
        // Cap the pre-allocation so a corrupt length prefix cannot OOM.
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::decode(reader)?);
        }
        Ok(v)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(reader)?)),
            b => Err(CodecError::msg(format!("invalid option tag {b}"))),
        }
    }
}

impl<T: Encode + ?Sized> Encode for Box<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
}

impl<T: Decode> Decode for Box<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Box::new(T::decode(reader)?))
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let b = reader.take(N)?;
        Ok(b.try_into().expect("sized"))
    }
}

macro_rules! codec_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
        }

        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(($($name::decode(reader)?,)+))
            }
        }
    };
}

codec_tuple!(A: 0, B: 1);
codec_tuple!(A: 0, B: 1, C: 2);
codec_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<K: Encode, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        // Key order is already canonical; no sorting pass needed.
        write_len(out, self.len());
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = reader.read_len()?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(reader)?;
            let v = V::decode(reader)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<T: Encode> Encode for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode + Ord> Decode for BTreeSet<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = reader.read_len()?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(T::decode(reader)?);
        }
        Ok(set)
    }
}

impl Encode for Duration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs().encode(out);
        self.subsec_nanos().encode(out);
    }
}

impl Decode for Duration {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let secs = u64::decode(reader)?;
        let nanos = u32::decode(reader)?;
        Ok(Duration::new(secs, nanos))
    }
}

/// Implements [`Encode`]/[`Decode`] for a struct by encoding its named
/// fields in declaration order, with no framing.
#[macro_export]
macro_rules! impl_codec {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::codec::Encode for $ty {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $($crate::codec::Encode::encode(&self.$field, out);)*
            }
        }

        impl $crate::codec::Decode for $ty {
            fn decode(
                reader: &mut $crate::codec::Reader<'_>,
            ) -> ::std::result::Result<Self, $crate::codec::CodecError> {
                Ok(Self {
                    $($field: $crate::codec::Decode::decode(reader)?,)*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).expect("encodes");
        let back: T = from_bytes(&bytes).expect("decodes");
        assert_eq!(back, v);
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u64,
        b: Option<String>,
        c: Vec<u16>,
        d: [u8; 4],
    }
    impl_codec!(Demo { a, b, c, d });

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(-12345i64);
        roundtrip(u128::MAX);
        roundtrip(3.5f64);
        roundtrip(String::from("hello, 世界"));
        roundtrip(Option::<u8>::None);
        roundtrip(Some(7u8));
        roundtrip((1u8, 2u64, String::from("x")));
        roundtrip(Duration::new(12, 345));
    }

    #[test]
    fn integers_are_little_endian_fixed_width() {
        assert_eq!(to_bytes(&1u32).unwrap(), vec![1, 0, 0, 0]);
        assert_eq!(to_bytes(&0x0102u16).unwrap(), vec![2, 1]);
    }

    #[test]
    fn sequences_carry_u64_length_prefix() {
        let bytes = to_bytes(&vec![7u8, 8]).unwrap();
        assert_eq!(bytes, vec![2, 0, 0, 0, 0, 0, 0, 0, 7, 8]);
    }

    #[test]
    fn struct_macro_roundtrips() {
        roundtrip(Demo {
            a: 42,
            b: Some("yes".into()),
            c: vec![1, 2, 3],
            d: [9, 8, 7, 6],
        });
    }

    #[test]
    fn btree_collections_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(String::from("a"), 1u64);
        m.insert(String::from("b"), 2u64);
        roundtrip(m);
        let s: BTreeSet<u32> = [9, 3, 7].into_iter().collect();
        roundtrip(s);
        roundtrip(BTreeMap::<u64, u64>::new());
    }

    #[test]
    fn btree_map_encodes_in_key_order() {
        let mut fwd = BTreeMap::new();
        let mut rev = BTreeMap::new();
        for i in 0..16u8 {
            fwd.insert(i, i);
        }
        for i in (0..16u8).rev() {
            rev.insert(i, i);
        }
        assert_eq!(to_bytes(&fwd).unwrap(), to_bytes(&rev).unwrap());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&12345u64).expect("encodes");
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&1u8).expect("encodes");
        bytes.push(0);
        assert!(from_bytes::<u8>(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(from_bytes::<bool>(&[2]).is_err());
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        write_len(&mut bytes, usize::MAX);
        assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
    }
}
