//! The workspace's own random-number abstraction.
//!
//! Every sampling helper in the workspace is generic over [`Rng`] instead of
//! an external RNG trait, so the whole build stays hermetic: the only
//! generator anyone needs is [`crate::HmacDrbg`], which is deterministic,
//! seedable and reproducible across platforms.

/// A source of pseudo-random bits.
///
/// Implementors only have to provide [`Rng::next_u64`]; the remaining
/// methods have derived defaults. All default implementations consume the
/// stream big-endian-first so that `fill_bytes` and `next_u64` agree on the
/// byte order of the underlying stream.
pub trait Rng {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_be_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Samples uniformly from `[0, bound)` by rejection (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject the tail of the 64-bit space that would bias the result.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn gen_range(&mut self, bound: u64) -> u64 {
        (**self).gen_range(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl Rng for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn fill_bytes_matches_next_u64_stream() {
        let mut a = Counter(0);
        let mut b = Counter(0);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], b.next_u64().to_be_bytes());
        assert_eq!(&buf[8..], b.next_u64().to_be_bytes());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = Counter(42);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = Counter(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn zero_bound_panics() {
        Counter(0).gen_range(0);
    }
}
