//! The CPA-secure symmetric scheme `{KGen, Enc, Dec}` of Section III-B.

use crate::aes::Aes128;
use crate::error::CryptoError;
use crate::rng::Rng;

/// Length of the random nonce prepended to each ciphertext.
pub const NONCE_LEN: usize = 16;

/// An AES-128-CTR symmetric encryption key.
///
/// Ciphertext layout: `nonce (16 bytes) ‖ body (plaintext length)`.
/// Encryption with an explicit nonce keeps the scheme deterministic for a
/// fixed `(key, nonce, plaintext)` triple — the Build protocol stores the
/// same ciphertext bytes in the index and in the multiset hash, so both
/// sides must observe identical bytes.
///
/// # Examples
///
/// ```
/// use slicer_crypto::SymmetricKey;
/// let key = SymmetricKey::from_bytes([1u8; 16]);
/// let ct = key.encrypt(b"age=41", &[9u8; 16]);
/// assert_eq!(key.decrypt(&ct)?, b"age=41");
/// # Ok::<(), slicer_crypto::CryptoError>(())
/// ```
#[derive(Clone)]
pub struct SymmetricKey {
    cipher: Aes128,
    // slicer-lint: secret — raw AES key bytes
    key_bytes: [u8; 16],
}

impl std::fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SymmetricKey(<16 bytes>)")
    }
}

impl SymmetricKey {
    /// Generates a fresh random key (`KGen`).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut key = [0u8; 16];
        rng.fill_bytes(&mut key);
        Self::from_bytes(key)
    }

    /// Wraps an existing 16-byte key.
    pub fn from_bytes(key: [u8; 16]) -> Self {
        SymmetricKey {
            cipher: Aes128::new(&key),
            key_bytes: key,
        }
    }

    /// Raw key bytes (for handing `K_R` to authorized data users).
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.key_bytes
    }

    /// Encrypts with an explicit nonce. Callers must never reuse a nonce
    /// with different plaintexts under the same key; the Slicer owner draws
    /// nonces from its session RNG.
    pub fn encrypt(&self, plaintext: &[u8], nonce: &[u8; NONCE_LEN]) -> Vec<u8> {
        let mut out = Vec::with_capacity(NONCE_LEN + plaintext.len());
        out.extend_from_slice(nonce);
        out.extend_from_slice(plaintext);
        self.cipher.ctr_xor(nonce, &mut out[NONCE_LEN..]);
        out
    }

    /// Encrypts with a random nonce drawn from `rng`.
    pub fn encrypt_rng<R: Rng + ?Sized>(&self, plaintext: &[u8], rng: &mut R) -> Vec<u8> {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        self.encrypt(plaintext, &nonce)
    }

    /// Decrypts a ciphertext produced by [`SymmetricKey::encrypt`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::CiphertextTooShort`] if the input does not
    /// contain a full nonce.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.len() < NONCE_LEN {
            return Err(CryptoError::CiphertextTooShort {
                len: ciphertext.len(),
            });
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&ciphertext[..NONCE_LEN]);
        let mut body = ciphertext[NONCE_LEN..].to_vec();
        self.cipher.ctr_xor(&nonce, &mut body);
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HmacDrbg;

    #[test]
    fn roundtrip() {
        let key = SymmetricKey::from_bytes([5u8; 16]);
        let ct = key.encrypt(b"hello world", &[1u8; 16]);
        assert_eq!(key.decrypt(&ct).unwrap(), b"hello world");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let key = SymmetricKey::from_bytes([5u8; 16]);
        let ct = key.encrypt(b"hello world", &[1u8; 16]);
        assert_ne!(&ct[16..], b"hello world");
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let key = SymmetricKey::from_bytes([5u8; 16]);
        assert_ne!(
            key.encrypt(b"same", &[1u8; 16]),
            key.encrypt(b"same", &[2u8; 16])
        );
    }

    #[test]
    fn deterministic_for_fixed_nonce() {
        let key = SymmetricKey::from_bytes([5u8; 16]);
        assert_eq!(
            key.encrypt(b"same", &[1u8; 16]),
            key.encrypt(b"same", &[1u8; 16])
        );
    }

    #[test]
    fn wrong_key_garbles() {
        let k1 = SymmetricKey::from_bytes([5u8; 16]);
        let k2 = SymmetricKey::from_bytes([6u8; 16]);
        let ct = k1.encrypt(b"payload", &[0u8; 16]);
        assert_ne!(k2.decrypt(&ct).unwrap(), b"payload");
    }

    #[test]
    fn short_ciphertext_rejected() {
        let key = SymmetricKey::from_bytes([5u8; 16]);
        assert!(matches!(
            key.decrypt(&[0u8; 15]),
            Err(CryptoError::CiphertextTooShort { len: 15 })
        ));
    }

    #[test]
    fn empty_plaintext() {
        let key = SymmetricKey::generate(&mut HmacDrbg::from_u64(1));
        let ct = key.encrypt(b"", &[3u8; 16]);
        assert_eq!(ct.len(), NONCE_LEN);
        assert_eq!(key.decrypt(&ct).unwrap(), b"");
    }
}
