//! Error types for symmetric primitives.

use std::error::Error;
use std::fmt;

/// Errors returned by `slicer-crypto` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// Ciphertext shorter than the mandatory nonce prefix.
    CiphertextTooShort {
        /// Observed ciphertext length.
        len: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::CiphertextTooShort { len } => {
                write!(
                    f,
                    "ciphertext of {len} bytes is shorter than the 16-byte nonce"
                )
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CryptoError::CiphertextTooShort { len: 3 };
        let msg = e.to_string();
        assert!(msg.contains('3'));
        assert!(msg.starts_with("ciphertext"));
    }
}
