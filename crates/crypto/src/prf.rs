//! Keyed PRF façade used as `F` and `G` in the Slicer protocols.

use crate::hmac_mod::hmac_sha256;

/// A pseudo-random function keyed with an arbitrary byte string.
///
/// This is the `F : {0,1}^λ × {0,1}^* → {0,1}^λ` of the paper, instantiated
/// with HMAC-SHA256 (the prototype used HMAC-128; we keep the full 256-bit
/// output for index labels and expose [`Prf::eval128`] where the truncated
/// form is wanted).
///
/// # Examples
///
/// ```
/// use slicer_crypto::Prf;
/// let g = Prf::new(b"master key K");
/// // G(K, w || 1) and G(K, w || 2) from Algorithm 1:
/// let g1 = g.derive(b"keyword w", 1);
/// let g2 = g.derive(b"keyword w", 2);
/// assert_ne!(g1, g2);
/// ```
#[derive(Clone)]
pub struct Prf {
    key: Vec<u8>,
}

impl std::fmt::Debug for Prf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Prf(<keyed>)")
    }
}

impl Prf {
    /// Creates a PRF keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        Prf { key: key.to_vec() }
    }

    /// Evaluates the PRF on `input`, returning 32 bytes.
    pub fn eval(&self, input: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.key, input)
    }

    /// Evaluates the PRF truncated to 16 bytes (the paper's HMAC-128).
    pub fn eval128(&self, input: &[u8]) -> [u8; 16] {
        let full = self.eval(input);
        let mut out = [0u8; 16];
        out.copy_from_slice(&full[..16]);
        out
    }

    /// Domain-separated derivation `PRF(key, input ‖ tag)` — the
    /// `G(K, w‖1)` / `G(K, w‖2)` pattern of Algorithms 1–3.
    pub fn derive(&self, input: &[u8], tag: u8) -> [u8; 32] {
        let mut buf = Vec::with_capacity(input.len() + 1);
        buf.extend_from_slice(input);
        buf.push(tag);
        self.eval(&buf)
    }

    /// Evaluates the PRF on the concatenation of two parts, mirroring the
    /// `F(G1, t ‖ c)` pattern without intermediate allocation at call sites.
    pub fn eval2(&self, a: &[u8], b: &[u8]) -> [u8; 32] {
        let mut mac = crate::hmac_mod::Hmac::new(&self.key);
        mac.update(a);
        mac.update(b);
        mac.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = Prf::new(b"k");
        assert_eq!(p.eval(b"x"), p.eval(b"x"));
    }

    #[test]
    fn derive_separates_domains() {
        let p = Prf::new(b"k");
        assert_ne!(p.derive(b"w", 1), p.derive(b"w", 2));
        // Matches explicit concatenation.
        assert_eq!(p.derive(b"w", 1), p.eval(b"w\x01"));
    }

    #[test]
    fn eval2_matches_concat() {
        let p = Prf::new(b"k");
        assert_eq!(p.eval2(b"foo", b"bar"), p.eval(b"foobar"));
    }

    #[test]
    fn eval128_is_prefix() {
        let p = Prf::new(b"k");
        assert_eq!(p.eval128(b"x"), p.eval(b"x")[..16]);
    }

    #[test]
    fn debug_hides_key() {
        let p = Prf::new(b"secret");
        assert!(!format!("{p:?}").contains("secret"));
    }
}
