//! Keyed PRF façade used as `F` and `G` in the Slicer protocols.

use crate::hmac_mod::Hmac;

/// A pseudo-random function keyed with an arbitrary byte string.
///
/// This is the `F : {0,1}^λ × {0,1}^* → {0,1}^λ` of the paper, instantiated
/// with HMAC-SHA256 (the prototype used HMAC-128; we keep the full 256-bit
/// output for index labels and expose [`Prf::eval128`] where the truncated
/// form is wanted).
///
/// # Examples
///
/// ```
/// use slicer_crypto::Prf;
/// let g = Prf::new(b"master key K");
/// // G(K, w || 1) and G(K, w || 2) from Algorithm 1:
/// let g1 = g.derive(b"keyword w", 1);
/// let g2 = g.derive(b"keyword w", 2);
/// assert_ne!(g1, g2);
/// ```
#[derive(Clone)]
pub struct Prf {
    /// HMAC prototype with both key-pad blocks pre-compressed; every
    /// evaluation clones this midstate instead of re-running the key
    /// schedule (two SHA-256 compressions saved per call).
    proto: Hmac,
}

impl std::fmt::Debug for Prf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Prf(<keyed>)")
    }
}

impl Prf {
    /// Creates a PRF keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        Prf {
            proto: Hmac::new(key),
        }
    }

    /// Evaluates the PRF on `input`, returning 32 bytes.
    pub fn eval(&self, input: &[u8]) -> [u8; 32] {
        let mut mac = self.proto.clone();
        mac.update(input);
        mac.finalize()
    }

    /// Evaluates the PRF truncated to 16 bytes (the paper's HMAC-128).
    pub fn eval128(&self, input: &[u8]) -> [u8; 16] {
        let full = self.eval(input);
        let mut out = [0u8; 16];
        out.copy_from_slice(&full[..16]);
        out
    }

    /// Domain-separated derivation `PRF(key, input ‖ tag)` — the
    /// `G(K, w‖1)` / `G(K, w‖2)` pattern of Algorithms 1–3.
    pub fn derive(&self, input: &[u8], tag: u8) -> [u8; 32] {
        let mut mac = self.proto.clone();
        mac.update(input);
        mac.update(&[tag]);
        mac.finalize()
    }

    /// Evaluates the PRF on the concatenation of two parts, mirroring the
    /// `F(G1, t ‖ c)` pattern without intermediate allocation at call sites.
    pub fn eval2(&self, a: &[u8], b: &[u8]) -> [u8; 32] {
        let mut mac = self.proto.clone();
        mac.update(a);
        mac.update(b);
        mac.finalize()
    }

    /// Pins a fixed input prefix: `F(K, prefix ‖ ·)`. The returned stream
    /// has the prefix absorbed once, so evaluating many suffixes (the
    /// `F(G1, t ‖ c)` loops over counters in Algorithms 1–4) skips
    /// re-hashing the prefix every call.
    pub fn stream(&self, prefix: &[u8]) -> PrfStream {
        let mut mac = self.proto.clone();
        mac.update(prefix);
        PrfStream { mid: mac }
    }
}

/// A [`Prf`] evaluation midstate with a fixed prefix already absorbed; see
/// [`Prf::stream`]. Output is identical to `prf.eval2(prefix, suffix)`.
#[derive(Clone)]
pub struct PrfStream {
    mid: Hmac,
}

impl std::fmt::Debug for PrfStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PrfStream(<keyed>)")
    }
}

impl PrfStream {
    /// Evaluates the PRF on `prefix ‖ suffix`, returning 32 bytes.
    pub fn eval(&self, suffix: &[u8]) -> [u8; 32] {
        let mut mac = self.mid.clone();
        mac.update(suffix);
        mac.finalize()
    }

    /// [`PrfStream::eval`] truncated to 16 bytes.
    pub fn eval128(&self, suffix: &[u8]) -> [u8; 16] {
        let full = self.eval(suffix);
        let mut out = [0u8; 16];
        out.copy_from_slice(&full[..16]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = Prf::new(b"k");
        assert_eq!(p.eval(b"x"), p.eval(b"x"));
    }

    #[test]
    fn derive_separates_domains() {
        let p = Prf::new(b"k");
        assert_ne!(p.derive(b"w", 1), p.derive(b"w", 2));
        // Matches explicit concatenation.
        assert_eq!(p.derive(b"w", 1), p.eval(b"w\x01"));
    }

    #[test]
    fn eval2_matches_concat() {
        let p = Prf::new(b"k");
        assert_eq!(p.eval2(b"foo", b"bar"), p.eval(b"foobar"));
    }

    #[test]
    fn eval128_is_prefix() {
        let p = Prf::new(b"k");
        assert_eq!(p.eval128(b"x"), p.eval(b"x")[..16]);
    }

    #[test]
    fn debug_hides_key() {
        let p = Prf::new(b"secret");
        assert!(!format!("{p:?}").contains("secret"));
    }

    #[test]
    fn stream_matches_eval2() {
        let p = Prf::new(b"k");
        // Prefix lengths straddling the 64-byte block boundary exercise
        // every midstate-buffering case.
        for plen in [0usize, 5, 63, 64, 65, 128, 130] {
            let prefix = vec![0xA7u8; plen];
            let s = p.stream(&prefix);
            for suffix in [b"".as_slice(), b"c", b"counter-0001"] {
                assert_eq!(s.eval(suffix), p.eval2(&prefix, suffix), "plen {plen}");
                assert_eq!(s.eval128(suffix), p.eval2(&prefix, suffix)[..16]);
            }
        }
    }
}
