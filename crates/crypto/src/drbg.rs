//! HMAC-DRBG (NIST SP 800-90A style) for deterministic, reproducible
//! randomness in experiments and simulations.

use crate::hmac_mod::hmac_sha256;
use crate::rng::Rng;

/// A deterministic random bit generator built on HMAC-SHA256.
///
/// Implements [`Rng`] so it can drive any sampling helper in the
/// workspace. Two instances seeded identically produce identical streams —
/// the property the benchmark harness relies on for reproducible datasets.
///
/// # Examples
///
/// ```
/// use slicer_crypto::{HmacDrbg, Rng};
/// let mut a = HmacDrbg::new(b"seed");
/// let mut b = HmacDrbg::new(b"seed");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone)]
pub struct HmacDrbg {
    // slicer-lint: secret — DRBG working key
    key: [u8; 32],
    value: [u8; 32],
    buffer: Vec<u8>,
}

impl std::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HmacDrbg(<state>)")
    }
}

impl HmacDrbg {
    /// Instantiates the DRBG from seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
            buffer: Vec::new(),
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Convenience constructor from a `u64` seed.
    pub fn from_u64(seed: u64) -> Self {
        Self::new(&seed.to_be_bytes())
    }

    fn update(&mut self, data: Option<&[u8]>) {
        let mut buf = Vec::with_capacity(33 + data.map_or(0, <[u8]>::len));
        buf.extend_from_slice(&self.value);
        buf.push(0x00);
        if let Some(d) = data {
            buf.extend_from_slice(d);
        }
        self.key = hmac_sha256(&self.key, &buf);
        self.value = hmac_sha256(&self.key, &self.value);
        if let Some(d) = data {
            let mut buf = Vec::with_capacity(33 + d.len());
            buf.extend_from_slice(&self.value);
            buf.push(0x01);
            buf.extend_from_slice(d);
            self.key = hmac_sha256(&self.key, &buf);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }

    fn refill(&mut self) {
        self.value = hmac_sha256(&self.key, &self.value);
        self.buffer.extend_from_slice(&self.value);
    }

    /// Fills `out` with pseudo-random bytes.
    pub fn generate(&mut self, out: &mut [u8]) {
        while self.buffer.len() < out.len() {
            self.refill();
        }
        let rest = self.buffer.split_off(out.len());
        out.copy_from_slice(&self.buffer);
        self.buffer = rest;
    }
}

impl Rng for HmacDrbg {
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.generate(&mut b);
        u64::from_be_bytes(b)
    }

    // Read exactly 4 bytes so interleaved u32/u64 draws stay aligned with
    // the underlying byte stream.
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.generate(&mut b);
        u32::from_be_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.generate(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = HmacDrbg::new(b"x");
        let mut b = HmacDrbg::new(b"x");
        let mut buf_a = [0u8; 100];
        let mut buf_b = [0u8; 100];
        a.generate(&mut buf_a);
        b.generate(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = HmacDrbg::from_u64(1);
        let mut b = HmacDrbg::from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chunking_does_not_change_stream() {
        let mut a = HmacDrbg::new(b"s");
        let mut b = HmacDrbg::new(b"s");
        let mut big = [0u8; 64];
        a.generate(&mut big);
        let mut parts = [0u8; 64];
        for chunk in parts.chunks_mut(7) {
            b.generate(chunk);
        }
        assert_eq!(big, parts);
    }

    #[test]
    fn output_looks_balanced() {
        let mut d = HmacDrbg::from_u64(42);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += d.next_u64().count_ones();
        }
        // 64k bits, expect ~32k ones; allow a generous window.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }
}
