//! # slicer-par
//!
//! A deterministic fixed-worker fan-out for the Slicer reproduction: the
//! one sanctioned way to use OS threads in protocol code.
//!
//! Every other crate in the workspace is forbidden from touching
//! `std::thread` by the `det.thread` lint rule, because ad-hoc threading
//! breaks the repo's core invariant — same-seed runs must produce
//! byte-identical protocol and telemetry transcripts. This crate is
//! allowlisted *by construction* in `slicer-lint` because its API cannot
//! express a nondeterministic result:
//!
//! * **Ordered join.** [`Pool::par_map`] and [`Pool::par_chunks`] return
//!   results in submission order regardless of completion order. Workers
//!   pull task indexes from a shared atomic counter (steal-free: a task is
//!   executed exactly once, by whichever worker pulls it) and tag each
//!   result with its index; the caller reassembles by index.
//! * **Caller-thread telemetry.** All `par.*` counters and spans are
//!   emitted from the submitting thread, before and after the fan-out.
//!   Workers never touch the telemetry handle, so sink transcripts carry
//!   the same events in the same order at any pool size.
//! * **Pure tasks.** The task closure only gets `&T` and returns an owned
//!   `R`; with a deterministic closure the merged output is a pure
//!   function of the input slice, independent of scheduling.
//!
//! The worker count comes from [`Pool::configured`] (the `SLICER_THREADS`
//! environment variable, else available parallelism capped at 8) or an
//! explicit [`Pool::new`] — determinism tests run the same seed at pool
//! sizes 1, 2 and 8 and require byte-identical transcripts.
//!
//! # Examples
//!
//! ```
//! use slicer_par::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use slicer_telemetry::TelemetryHandle;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fan-outs below this size run inline on the caller thread: spawning OS
/// threads costs more than the work saved.
const INLINE_THRESHOLD: usize = 4;

/// A deterministic fixed-worker thread pool with ordered join.
///
/// Cheap to construct (workers are scoped per call, not persistent), so
/// protocol actors hold one per instance and clone-free sharing is not
/// needed.
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
    telemetry: TelemetryHandle,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::configured()
    }
}

impl Pool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// A single-worker pool: every `par_map` runs inline on the caller
    /// thread.
    pub fn single() -> Self {
        Pool::new(1)
    }

    /// The worker count the environment asks for: `SLICER_THREADS` when
    /// set to a positive integer, otherwise the machine's available
    /// parallelism capped at 8.
    ///
    /// Read per call (no caching), so tests can vary the variable.
    pub fn configured() -> Self {
        Pool::new(configured_workers())
    }

    /// Installs a telemetry context; `par.*` counters and the `par.map`
    /// span are recorded through it **from the caller thread only**, so
    /// transcripts are identical at any worker count. Disabled by default.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// Builder-style [`Pool::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The fixed worker count of this pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every element and returns the results in submission
    /// order, regardless of which worker finished which task first.
    ///
    /// Emits one `par.map` span (attribute `tasks`) plus the `par.maps`
    /// and `par.tasks` counters — all from the calling thread, so the
    /// telemetry transcript does not depend on the worker count.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let mut span = self.telemetry.span("par.map");
        span.attr("tasks", items.len());
        self.telemetry.count("par.maps", 1);
        self.telemetry.count("par.tasks", items.len() as u64);
        self.run(items, f)
    }

    /// [`Pool::par_map`] over contiguous chunks of `chunk` elements: `f`
    /// maps each chunk to a vector, and the per-chunk outputs are
    /// concatenated in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> Vec<R> + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        let mut span = self.telemetry.span("par.map");
        span.attr("tasks", chunks.len());
        self.telemetry.count("par.maps", 1);
        self.telemetry.count("par.tasks", chunks.len() as u64);
        self.run(&chunks, |c| f(c)).into_iter().flatten().collect()
    }

    /// The telemetry-silent fan-out shared by the public entry points:
    /// ordered join, no events. Exposed for callers (like the recursive
    /// root-factor tree) that fan out repeatedly under one already-open
    /// span and must not flood the transcript.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 || items.len() < INLINE_THRESHOLD {
            return items.iter().map(f).collect();
        }

        // Steal-free work pulling: each worker repeatedly claims the next
        // unclaimed index. Assignment of tasks to workers is scheduling-
        // dependent, but every result is tagged with its submission index,
        // so the merged output is not.
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut got = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            got.push((i, f(item)));
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });

        // Ordered join: place each tagged result at its submission index.
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for part in parts {
            for (i, r) in part {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every submitted index yields exactly one result"))
            .collect()
    }
}

/// The worker count [`Pool::configured`] resolves to.
pub fn configured_workers() -> usize {
    if let Ok(v) = std::env::var("SLICER_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_telemetry::{LogicalClock, MemorySink};
    use std::sync::Arc;

    #[test]
    fn results_are_in_submission_order() {
        let pool = Pool::new(8);
        let items: Vec<u64> = (0..1000).collect();
        // Uneven task costs so completion order differs from submission
        // order: the join must still be ordered.
        let out = pool.par_map(&items, |&x| {
            let mut acc = x;
            for _ in 0..(x % 97) * 50 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        assert_eq!(out.len(), items.len());
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, items[i]);
        }
    }

    #[test]
    fn every_pool_size_agrees() {
        let items: Vec<u64> = (0..257).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = Pool::new(workers);
            assert_eq!(
                pool.par_map(&items, |&x| x * x + 1),
                reference,
                "pool size {workers}"
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = Pool::new(4);
        assert!(pool.par_map(&[] as &[u8], |&b| b).is_empty());
        assert_eq!(pool.par_map(&[7u8], |&b| b + 1), vec![8]);
    }

    #[test]
    fn par_chunks_concatenates_in_chunk_order() {
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..103).collect();
        let out = pool.par_chunks(&items, 10, |c| c.iter().map(|&x| x * 2).collect());
        let want: Vec<u32> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(out, want);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        Pool::new(2).par_chunks(&[1u8], 0, |c| c.to_vec());
    }

    #[test]
    fn workers_clamped_to_one() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert_eq!(Pool::single().workers(), 1);
    }

    #[test]
    fn telemetry_transcript_is_worker_count_independent() {
        let transcript = |workers: usize| {
            let sink = Arc::new(MemorySink::new());
            let handle =
                TelemetryHandle::with(Arc::new(LogicalClock::default()), sink.clone() as _);
            let pool = Pool::new(workers).with_telemetry(handle);
            let items: Vec<u64> = (0..100).collect();
            let out = pool.par_map(&items, |&x| x + 1);
            assert_eq!(out[99], 100);
            sink.transcript()
        };
        let t1 = transcript(1);
        assert_eq!(t1, transcript(2));
        assert_eq!(t1, transcript(8));
        assert!(t1.contains("\"name\":\"par.map\""));
        assert!(t1.contains("\"tasks\":100"));
    }

    #[test]
    fn run_is_telemetry_silent() {
        let sink = Arc::new(MemorySink::new());
        let handle = TelemetryHandle::with(Arc::new(LogicalClock::default()), sink.clone() as _);
        let pool = Pool::new(4).with_telemetry(handle);
        let items: Vec<u64> = (0..64).collect();
        let out = pool.run(&items, |&x| x);
        assert_eq!(out, items);
        assert!(sink.is_empty(), "run() must not emit events");
    }
}
